"""The batching request frontend: policies, pairing, metrics."""

import pytest

from repro.common.errors import ProtocolError
from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRDeployment, IMPIRServer
from repro.core.scheduler import BatchSchedule
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import (
    FLUSH_ON_CLOSE,
    FLUSH_ON_SIZE,
    FLUSH_ON_WAIT,
    AdaptiveBatchingPolicy,
    BatchingPolicy,
    PIRFrontend,
    RequestRouter,
)
from repro.pir.messages import PIRAnswer
from repro.pir.server import PIRServer


@pytest.fixture(scope="module")
def database():
    return Database.random(512, 32, seed=71)


def make_client(database, seed=3):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def reference_replicas(database):
    return [PIRServer(database, server_id=i, prg=make_prg("numpy")) for i in (0, 1)]


def impir_replicas(database, num_clusters=2):
    config = IMPIRConfig(
        pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=num_clusters
    )
    return [IMPIRServer(database, config=config, server_id=i) for i in (0, 1)]


class TestBatchingPolicy:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ProtocolError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ProtocolError):
            BatchingPolicy(max_wait_seconds=-1.0)

    def test_from_pipeline_saturates_the_wider_resource(self):
        policy = BatchingPolicy.from_pipeline(num_workers=4, num_clusters=2, rounds=3)
        assert policy.max_batch_size == 12
        policy = BatchingPolicy.from_pipeline(num_workers=1, num_clusters=8, rounds=2)
        assert policy.max_batch_size == 16


class TestBatchingBehaviour:
    def test_size_flush_and_partial_close(self, database):
        frontend = PIRFrontend(
            make_client(database),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=2),
        )
        records = frontend.retrieve_batch([1, 2, 3, 4, 5])
        assert records == [database.record(i) for i in (1, 2, 3, 4, 5)]
        assert frontend.metrics.batches_dispatched == 3  # 2+2 on size, 1 on close
        assert frontend.metrics.flush_reasons == {FLUSH_ON_SIZE: 2, FLUSH_ON_CLOSE: 1}
        assert frontend.metrics.requests_served == 5

    def test_max_wait_flush_on_late_arrival(self, database):
        frontend = PIRFrontend(
            make_client(database),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=100, max_wait_seconds=0.5),
        )
        first = frontend.submit(10, arrival_seconds=0.0)
        frontend.submit(11, arrival_seconds=0.1)
        assert frontend.pending_count == 2
        # The late arrival proves the oldest request waited past its budget:
        # the pending batch flushes before the new request is admitted.
        frontend.submit(12, arrival_seconds=0.7)
        assert frontend.pending_count == 1
        assert frontend.metrics.flush_reasons == {FLUSH_ON_WAIT: 1}
        assert frontend.take_record(first) == database.record(10)
        frontend.close()
        assert frontend.metrics.flush_reasons == {FLUSH_ON_WAIT: 1, FLUSH_ON_CLOSE: 1}

    def test_advance_time_flushes_without_new_arrivals(self, database):
        frontend = PIRFrontend(
            make_client(database),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=100, max_wait_seconds=0.25),
        )
        request = frontend.submit(42, arrival_seconds=1.0)
        frontend.advance_time(1.1)
        assert frontend.pending_count == 1
        frontend.advance_time(1.3)
        assert frontend.pending_count == 0
        assert frontend.take_record(request) == database.record(42)

    def test_clock_moves_forward_only(self, database):
        frontend = PIRFrontend(make_client(database), reference_replicas(database))
        frontend.submit(0, arrival_seconds=5.0)
        with pytest.raises(ProtocolError):
            frontend.submit(1, arrival_seconds=4.0)

    def test_unknown_request_id_rejected(self, database):
        frontend = PIRFrontend(make_client(database), reference_replicas(database))
        with pytest.raises(ProtocolError):
            frontend.take_record(99)

    def test_empty_retrieve_batch(self, database):
        frontend = PIRFrontend(make_client(database), reference_replicas(database))
        assert frontend.retrieve_batch([]) == []
        assert frontend.metrics.batches_dispatched == 0


class TestInterleavedReplicas:
    def test_pairing_survives_interleaved_batches(self, database):
        """Queries from many requests interleave inside each replica's batch;
        the frontend must still pair every request's two answers by id."""
        frontend = PIRFrontend(
            make_client(database),
            impir_replicas(database),
            policy=BatchingPolicy(max_batch_size=8),
        )
        indices = [7, 7, 100, 511, 0, 100, 8, 9]  # duplicates on purpose
        records = frontend.retrieve_batch(indices)
        assert records == [database.record(i) for i in indices]

    def test_mixed_architecture_replicas(self, database):
        """Replica 0 on PIM, replica 1 on the reference scan: the protocol
        does not care where a replica runs."""
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
        replicas = [
            IMPIRServer(database, config=config, server_id=0),
            PIRServer(database, server_id=1, prg=make_prg("numpy")),
        ]
        frontend = PIRFrontend(make_client(database), replicas)
        assert frontend.retrieve_batch([3, 300]) == [
            database.record(3),
            database.record(300),
        ]

    def test_replica_order_validated(self, database):
        replicas = list(reversed(reference_replicas(database)))
        with pytest.raises(ProtocolError):
            PIRFrontend(make_client(database), replicas)

    def test_replica_count_validated(self, database):
        with pytest.raises(ProtocolError):
            PIRFrontend(make_client(database), reference_replicas(database)[:1])

    def test_replica_without_server_id_rejected(self, database):
        """An object lacking server_id must not slip through the order check."""

        class _Anonymous:
            def answer_batch(self, queries):  # pragma: no cover - never reached
                return []

        replicas = reference_replicas(database)
        replicas[1] = _Anonymous()
        with pytest.raises(ProtocolError, match="server_id"):
            PIRFrontend(make_client(database), replicas)


class _TamperingReplica:
    """A replica whose answer stream can drop or duplicate entries."""

    def __init__(self, inner, drop_first=False, duplicate_first=False):
        self._inner = inner
        self.server_id = inner.server_id
        self._drop_first = drop_first
        self._duplicate_first = duplicate_first

    def answer_batch(self, queries):
        answers = [self._inner.answer(query) for query in queries]
        if self._drop_first:
            answers = answers[1:]
        if self._duplicate_first:
            answers = [answers[0]] + answers
        return answers


class TestPairingFaults:
    def test_missing_answer_raises(self, database):
        replicas = reference_replicas(database)
        replicas[1] = _TamperingReplica(replicas[1], drop_first=True)
        frontend = PIRFrontend(make_client(database), replicas)
        with pytest.raises(ProtocolError, match="missing answer"):
            frontend.retrieve_batch([5, 6])

    def test_duplicate_answer_raises(self, database):
        replicas = reference_replicas(database)
        replicas[0] = _TamperingReplica(replicas[0], duplicate_first=True)
        frontend = PIRFrontend(make_client(database), replicas)
        with pytest.raises(ProtocolError, match="duplicate answer"):
            frontend.retrieve_batch([5, 6])


class TestSchedulingMetrics:
    def test_metrics_report_via_batch_schedule(self, database):
        frontend = PIRFrontend(
            make_client(database),
            impir_replicas(database),
            policy=BatchingPolicy(max_batch_size=8),
        )
        frontend.retrieve_batch(list(range(8)))
        metrics = frontend.metrics
        assert metrics.batches_dispatched == 1
        assert metrics.total_makespan_seconds > 0
        assert metrics.throughput_qps == pytest.approx(8 / metrics.total_makespan_seconds)
        assert isinstance(metrics.last_schedule, BatchSchedule)
        assert 0 < metrics.last_cluster_utilization <= 1.0

    def test_untimed_replicas_report_infinite_throughput(self, database):
        frontend = PIRFrontend(make_client(database), reference_replicas(database))
        frontend.retrieve_batch([1])
        assert frontend.metrics.total_makespan_seconds == 0.0
        assert frontend.metrics.throughput_qps == float("inf")

    def test_cpu_replicas_report_their_analytic_makespan(self, database):
        """The frontend honours the CPU baseline's batch cost model."""
        from repro.cpu.cpu_pir import CPUPIRServer

        replicas = [CPUPIRServer(database, server_id=i, prg=make_prg("numpy")) for i in (0, 1)]
        expected = replicas[0].estimate_batch(
            database.num_records, database.record_size, batch_size=3
        ).latency_seconds
        frontend = PIRFrontend(make_client(database), replicas)
        frontend.retrieve_batch([1, 2, 3])
        assert frontend.metrics.total_makespan_seconds == pytest.approx(expected)

    def test_streamed_replicas_report_sequential_makespan(self, database):
        """Streamed servers return per-query results; the frontend sums them."""
        from repro.core.streaming import StreamedIMPIRServer

        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))
        replicas = [
            StreamedIMPIRServer(database, config=config, server_id=i, segment_records=200)
            for i in (0, 1)
        ]
        frontend = PIRFrontend(make_client(database), replicas)
        frontend.retrieve_batch([1, 2])
        assert frontend.metrics.total_makespan_seconds > 0


class TestAgainstSeedBehaviour:
    """PIRFrontend.retrieve_batch matches the seed's pairing semantics."""

    def test_matches_manual_per_query_reconstruction(self, database):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=2)
        indices = [5, 99, 200, 511, 0]

        manual_client = make_client(database, seed=12)
        servers = [IMPIRServer(database, config=config, server_id=i) for i in (0, 1)]
        manual = []
        for index in indices:
            queries = manual_client.query(index)
            answers = [servers[q.server_id].answer(q).answer for q in queries]
            manual.append(manual_client.reconstruct(answers))

        frontend = PIRFrontend(
            make_client(database, seed=12),
            [IMPIRServer(database, config=config, server_id=i) for i in (0, 1)],
            policy=BatchingPolicy(max_batch_size=len(indices)),
        )
        assert frontend.retrieve_batch(indices) == manual

    def test_deployment_routes_through_frontend(self, database):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=2)
        deployment = IMPIRDeployment(database, config=config, client_seed=2)
        indices = [5, 99, 248, 495]
        records = deployment.retrieve_batch(indices)
        assert records == [database.record(i) for i in indices]
        assert deployment.frontend.metrics.batches_dispatched >= 1
        assert deployment.frontend.metrics.total_makespan_seconds > 0
        assert isinstance(deployment.frontend, RequestRouter)


class TestAdaptiveBatchingPolicy:
    def test_additive_increase_under_low_utilization(self):
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=4, increase_step=2, low_utilization=0.5
        )
        for _ in range(3):
            policy.observe_utilization(0.1)
        assert policy.max_batch_size == 10  # 4 -> 6 -> 8 -> 10: additive

    def test_multiplicative_decrease_under_saturation(self):
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=64, decrease_factor=0.5, high_utilization=0.9
        )
        policy.observe_utilization(0.95)
        assert policy.max_batch_size == 32
        policy.observe_utilization(0.99)
        assert policy.max_batch_size == 16  # multiplicative

    def test_decrease_rounds_instead_of_truncating(self):
        """Truncation would jump 3 -> 1, overshooting past the AIMD knee."""
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=3, decrease_factor=0.5, high_utilization=0.9
        )
        sizes = [policy.observe_utilization(0.95) for _ in range(3)]
        assert sizes == [2, 1, 1]  # 3 -> 2 (1.5 rounds up), 2 -> 1, floor at 1

    def test_decrease_sequence_pinned_from_odd_start(self):
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=9, decrease_factor=0.5, high_utilization=0.9
        )
        sizes = [policy.observe_utilization(0.95) for _ in range(5)]
        assert sizes == [5, 3, 2, 1, 1]  # never a >factor jump in one step

    def test_gentle_factor_still_reaches_the_floor(self):
        """Rounding must not turn sustained saturation into a no-op: with
        decrease_factor=0.9, 5 * 0.9 rounds back to 5 — the controller still
        has to step down until it hits min_batch_size."""
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=8, decrease_factor=0.9, high_utilization=0.9
        )
        sizes = [policy.observe_utilization(0.99) for _ in range(8)]
        assert sizes == [7, 6, 5, 4, 3, 2, 1, 1]

    def test_holds_steady_inside_the_band(self):
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=8, low_utilization=0.5, high_utilization=0.9
        )
        policy.observe_utilization(0.7)
        assert policy.max_batch_size == 8

    def test_clamped_to_bounds(self):
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=4,
            min_batch_size=2,
            max_batch_size_limit=6,
            increase_step=10,
            decrease_factor=0.01,
        )
        policy.observe_utilization(0.0)
        assert policy.max_batch_size == 6
        policy.observe_utilization(1.0)
        assert policy.max_batch_size == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ProtocolError):
            AdaptiveBatchingPolicy(initial_batch_size=0)
        with pytest.raises(ProtocolError):
            AdaptiveBatchingPolicy(decrease_factor=1.5)
        with pytest.raises(ProtocolError):
            AdaptiveBatchingPolicy(low_utilization=0.9, high_utilization=0.5)

    def test_frontend_drives_the_policy_up_and_down(self, database):
        """End to end: flushed batches feed cluster utilization back into the
        policy, resizing max_batch_size online."""
        policy = AdaptiveBatchingPolicy(
            initial_batch_size=1,
            increase_step=2,
            low_utilization=0.6,
            high_utilization=0.99,
        )
        frontend = PIRFrontend(make_client(database), impir_replicas(database), policy)
        # One query over two clusters: one cluster is necessarily idle, so
        # utilization <= 0.5 and the policy must grow the batch.
        frontend.retrieve_batch([1])
        assert policy.history, "flush did not report utilization"
        assert policy.history[0][0] <= 0.5
        grown = policy.max_batch_size
        assert grown > 1  # under-utilized -> additive increase
        # The next batch only flushes once it reaches the *new* size.
        for index in range(grown):
            frontend.submit(index)
        assert frontend.metrics.batches_dispatched == 2
        policy.observe_utilization(1.0)
        assert policy.max_batch_size < grown  # saturation -> multiplicative cut


class TestDedup:
    def test_duplicate_indices_scanned_once(self, database):
        replicas = reference_replicas(database)
        scanned = []
        original = replicas[0].answer_batch

        def spying_answer_batch(queries):
            scanned.append(len(queries))
            return original(queries)

        replicas[0].answer_batch = spying_answer_batch
        frontend = PIRFrontend(
            make_client(database),
            replicas,
            policy=BatchingPolicy(max_batch_size=6),
            dedup=True,
        )
        indices = [7, 7, 100, 7, 100, 3]
        records = frontend.retrieve_batch(indices)
        assert records == [database.record(i) for i in indices]
        assert scanned == [3]  # 3 distinct indices, not 6 queries
        assert frontend.metrics.deduped_requests == 3
        assert frontend.metrics.requests_served == 6

    def test_dedup_only_within_a_batch(self, database):
        frontend = PIRFrontend(
            make_client(database),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=2),
            dedup=True,
        )
        records = frontend.retrieve_batch([9, 9, 9])  # batches: [9, 9], [9]
        assert records == [database.record(9)] * 3
        assert frontend.metrics.deduped_requests == 1

    def test_dedup_off_by_default_and_scans_everything(self, database):
        replicas = reference_replicas(database)
        scanned = []
        original = replicas[0].answer_batch

        def spying_answer_batch(queries):
            scanned.append(len(queries))
            return original(queries)

        replicas[0].answer_batch = spying_answer_batch
        frontend = PIRFrontend(
            make_client(database), replicas, policy=BatchingPolicy(max_batch_size=4)
        )
        assert not frontend.dedup
        frontend.retrieve_batch([5, 5, 5, 5])
        assert scanned == [4]
        assert frontend.metrics.deduped_requests == 0

    def test_dedup_with_timed_replicas(self, database):
        frontend = PIRFrontend(
            make_client(database),
            impir_replicas(database),
            policy=BatchingPolicy(max_batch_size=4),
            dedup=True,
        )
        records = frontend.retrieve_batch([11, 11, 200, 11])
        assert records == [database.record(i) for i in (11, 11, 200, 11)]
        assert frontend.metrics.total_makespan_seconds > 0


class TestOrphanAnswers:
    def test_unmatched_answer_raises(self, database):
        class _ExtraAnswerReplica(_TamperingReplica):
            def answer_batch(self, queries):
                answers = [self._inner.answer(query) for query in queries]
                answers.append(
                    PIRAnswer(query_id=10_000, server_id=self.server_id, payload=b"\0" * 32)
                )
                return answers

        replicas = reference_replicas(database)
        replicas[1] = _ExtraAnswerReplica(replicas[1])
        frontend = PIRFrontend(make_client(database), replicas)
        with pytest.raises(ProtocolError, match="unmatched"):
            frontend.retrieve_batch([4])
