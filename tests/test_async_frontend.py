"""The asyncio frontend: real wait timers, concurrent dispatch, equivalence.

Everything runs under ``asyncio.run`` — no extra test dependency.  The
deterministic simulated-clock behaviour of the sync frontend is covered by
``test_frontend.py``; this suite covers what only a real event loop can
show: a wait flush with no follow-up arrival, size flushes racing
concurrent submitters, replica fan-out that genuinely overlaps in wall
time, and error propagation into every awaiting ``submit``.
"""

import asyncio
import time

import pytest

from repro.common.errors import ProtocolError
from repro.dpf.prf import make_prg
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import (
    FLUSH_ON_CLOSE,
    FLUSH_ON_SIZE,
    FLUSH_ON_WAIT,
    BatchingPolicy,
    PIRFrontend,
)
from repro.pir.server import PIRServer
from repro.shard.backend import ShardedServer


@pytest.fixture(scope="module")
def database():
    return Database.random(256, 24, seed=83)


def make_client(database, seed=5):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def reference_replicas(database):
    return [PIRServer(database, server_id=i, prg=make_prg("numpy")) for i in (0, 1)]


class _RecordingReplica:
    """Wraps a replica; records each ``answer_batch``'s wall-clock window."""

    def __init__(self, inner, hold_seconds=0.0):
        self._inner = inner
        self._hold_seconds = hold_seconds
        self.server_id = inner.server_id
        self.windows = []
        self.batch_sizes = []

    def answer_batch(self, queries):
        start = time.monotonic()
        if self._hold_seconds:
            time.sleep(self._hold_seconds)
        result = self._inner.answer_batch(queries)
        self.windows.append((start, time.monotonic()))
        self.batch_sizes.append(len(queries))
        return result


class TestWaitTimer:
    def test_lone_submit_flushes_on_the_timer_without_a_follow_up(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=100, max_wait_seconds=0.03),
            )
            start = time.monotonic()
            record = await frontend.submit(42)
            return frontend, record, time.monotonic() - start

        frontend, record, elapsed = asyncio.run(run())
        assert record == database.record(42)
        assert frontend.metrics.flush_reasons == {FLUSH_ON_WAIT: 1}
        assert elapsed >= 0.03  # the wait really elapsed in wall time
        assert frontend.pending_count == 0

    def test_timer_rearms_for_consecutive_lone_submits(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=100, max_wait_seconds=0.02),
            )
            first = await frontend.submit(1)
            second = await frontend.submit(2)
            return frontend, first, second

        frontend, first, second = asyncio.run(run())
        assert (first, second) == (database.record(1), database.record(2))
        assert frontend.metrics.flush_reasons == {FLUSH_ON_WAIT: 2}

    def test_size_flush_preempts_the_timer(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            records = await asyncio.gather(frontend.submit(3), frontend.submit(4))
            return frontend, records

        frontend, records = asyncio.run(run())
        assert records == [database.record(3), database.record(4)]
        # With a 30 s max wait, only the size rule can have fired.
        assert frontend.metrics.flush_reasons == {FLUSH_ON_SIZE: 1}


class TestSizeFlushUnderConcurrency:
    def test_concurrent_submitters_split_into_size_batches(self, database):
        indices = [7, 9, 11, 13, 15, 17, 19, 21]

        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=30.0),
            )
            records = await asyncio.gather(*(frontend.submit(i) for i in indices))
            return frontend, records

        frontend, records = asyncio.run(run())
        assert records == [database.record(i) for i in indices]
        assert frontend.metrics.flush_reasons == {FLUSH_ON_SIZE: 2}
        assert frontend.metrics.requests_served == len(indices)

    def test_retrieve_batch_closes_out_the_trailing_partial(self, database):
        indices = [1, 2, 3, 4, 5]

        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            records = await frontend.retrieve_batch(indices)
            return frontend, records

        frontend, records = asyncio.run(run())
        assert records == [database.record(i) for i in indices]
        assert frontend.metrics.flush_reasons == {FLUSH_ON_SIZE: 2, FLUSH_ON_CLOSE: 1}

    def test_empty_retrieve_batch(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database), reference_replicas(database)
            )
            return await frontend.retrieve_batch([])

        assert asyncio.run(run()) == []


class TestConcurrentDispatch:
    def test_replica_in_flight_windows_overlap(self, database):
        """Both replicas must be in flight at once: concurrent, not sequential."""

        async def run():
            replicas = [
                _RecordingReplica(replica, hold_seconds=0.03)
                for replica in reference_replicas(database)
            ]
            frontend = AsyncPIRFrontend(
                make_client(database),
                replicas,
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            records = await asyncio.gather(frontend.submit(8), frontend.submit(9))
            return replicas, records

        replicas, records = asyncio.run(run())
        assert records == [database.record(8), database.record(9)]
        (start_a, end_a), = replicas[0].windows
        (start_b, end_b), = replicas[1].windows
        assert max(start_a, start_b) < min(end_a, end_b)

    def test_sync_frontend_calls_the_same_replicas_sequentially(self, database):
        """Control for the overlap assertion: the sync path must NOT overlap."""
        replicas = [
            _RecordingReplica(replica, hold_seconds=0.01)
            for replica in reference_replicas(database)
        ]
        frontend = PIRFrontend(
            make_client(database), replicas, policy=BatchingPolicy(max_batch_size=2)
        )
        frontend.retrieve_batch([8, 9])
        (start_a, end_a), = replicas[0].windows
        (start_b, end_b), = replicas[1].windows
        assert max(start_a, start_b) >= min(end_a, end_b)


class TestDedup:
    def test_duplicate_indices_scanned_once_and_fanned_out(self, database):
        indices = [5, 5, 9, 5]

        async def run():
            replicas = [
                _RecordingReplica(replica)
                for replica in reference_replicas(database)
            ]
            frontend = AsyncPIRFrontend(
                make_client(database),
                replicas,
                policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=30.0),
                dedup=True,
            )
            records = await asyncio.gather(*(frontend.submit(i) for i in indices))
            return frontend, replicas, records

        frontend, replicas, records = asyncio.run(run())
        assert records == [database.record(i) for i in indices]
        assert frontend.metrics.deduped_requests == 2
        # Each replica saw one query per *distinct* index, not per request.
        assert replicas[0].batch_sizes == [2]
        assert replicas[1].batch_sizes == [2]


class TestErrorPropagation:
    def test_bad_index_raises_from_submit_without_poisoning_the_batch(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=0.02),
            )
            with pytest.raises(ProtocolError, match="out of range"):
                await frontend.submit(database.num_records + 7)
            # The frontend stays serviceable afterwards.
            record = await frontend.submit(3)
            return frontend, record

        frontend, record = asyncio.run(run())
        assert record == database.record(3)
        assert frontend.pending_count == 0

    def test_replica_fault_rejects_every_awaiting_submit(self, database):
        class _DuplicatingReplica:
            def __init__(self, inner):
                self._inner = inner
                self.server_id = inner.server_id

            def answer_batch(self, queries):
                answers = [self._inner.answer(query) for query in queries]
                return [answers[0]] + answers

        async def run():
            replicas = reference_replicas(database)
            replicas[1] = _DuplicatingReplica(replicas[1])
            frontend = AsyncPIRFrontend(
                make_client(database),
                replicas,
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            results = await asyncio.gather(
                frontend.submit(4), frontend.submit(5), return_exceptions=True
            )
            return frontend, results

        frontend, results = asyncio.run(run())
        assert len(results) == 2
        for result in results:
            assert isinstance(result, ProtocolError)
            assert "duplicate answer" in str(result)
        # The failed batch was fully drained: no stuck futures, no pending.
        assert frontend.pending_count == 0
        assert frontend.metrics.batches_dispatched == 0

    def test_cancelling_one_submitter_does_not_strand_the_batch(self, database):
        """The flush a submitter triggered must survive that submitter's death."""

        async def run():
            replicas = [
                _RecordingReplica(replica, hold_seconds=0.05)
                for replica in reference_replicas(database)
            ]
            frontend = AsyncPIRFrontend(
                make_client(database),
                replicas,
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            survivor = asyncio.create_task(frontend.submit(8))
            while frontend.pending_count == 0:
                await asyncio.sleep(0)
            trigger = asyncio.create_task(frontend.submit(9))  # size flush
            await asyncio.sleep(0.01)  # let the replica fan-out get in flight
            trigger.cancel()
            with pytest.raises(asyncio.CancelledError):
                await trigger
            # Without shielding, the cancel would abandon the dispatch and
            # the survivor would hang forever on its future.
            record = await asyncio.wait_for(survivor, timeout=5.0)
            return frontend, record

        frontend, record = asyncio.run(run())
        assert record == database.record(8)
        assert frontend.pending_count == 0

    def test_retrieve_batch_accepts_a_one_shot_iterable(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=30.0),
            )
            return await frontend.retrieve_batch(iter([1, 2, 3]))

        assert asyncio.run(run()) == [database.record(i) for i in (1, 2, 3)]

    def test_replicas_without_server_id_rejected(self, database):
        class _Anonymous:
            def answer_batch(self, queries):  # pragma: no cover - never reached
                return []

        with pytest.raises(ProtocolError, match="server_id"):
            AsyncPIRFrontend(
                make_client(database), [_Anonymous(), _Anonymous()]
            )


class TestEquivalenceWithSyncFrontend:
    def test_identical_records_for_the_same_request_stream(self, database):
        stream = [0, 17, 17, 31, 255, 128, 3, 3, 77, 200, 5]

        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database, seed=21),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=3, max_wait_seconds=30.0),
                dedup=True,
            )
            return await frontend.retrieve_batch(stream)

        async_records = asyncio.run(run())
        sync_frontend = PIRFrontend(
            make_client(database, seed=21),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=3),
            dedup=True,
        )
        sync_records = sync_frontend.retrieve_batch(stream)
        assert async_records == sync_records
        assert async_records == [database.record(i) for i in stream]

    def test_equivalence_over_threaded_sharded_fleets(self, database):
        stream = [10, 20, 30, 40]

        def fleets():
            return [
                ShardedServer(
                    database,
                    server_id=i,
                    num_shards=3,
                    executor="threads",
                    prg=make_prg("numpy"),
                )
                for i in (0, 1)
            ]

        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database, seed=9),
                fleets(),
                policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=30.0),
            )
            return await frontend.retrieve_batch(stream)

        async_records = asyncio.run(run())
        sync_records = PIRFrontend(
            make_client(database, seed=9),
            fleets(),
            policy=BatchingPolicy(max_batch_size=4),
        ).retrieve_batch(stream)
        assert async_records == sync_records == [database.record(i) for i in stream]


class TestClose:
    def test_close_cancels_the_timer_and_flushes(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=100, max_wait_seconds=30.0),
            )
            task = asyncio.create_task(frontend.submit(6))
            while frontend.pending_count == 0:
                await asyncio.sleep(0)
            await frontend.close()
            return frontend, await task

        frontend, record = asyncio.run(run())
        assert record == database.record(6)
        assert frontend.metrics.flush_reasons == {FLUSH_ON_CLOSE: 1}

    def test_close_with_nothing_pending_is_a_noop(self, database):
        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database), reference_replicas(database)
            )
            await frontend.close()
            return frontend

        frontend = asyncio.run(run())
        assert frontend.metrics.batches_dispatched == 0


class _RaisingBatchObserver:
    """An ``observe_batch`` observer that always raises."""

    def __init__(self):
        self.calls = 0

    def observe_batch(self, indices, now):
        self.calls += 1
        raise RuntimeError("observer boom")


class _RaisingFlushObserver:
    """An ``observe_flush`` observer that always raises."""

    def __init__(self):
        self.calls = 0

    def observe_flush(self, observation):
        self.calls += 1
        raise RuntimeError("flush observer boom")


class _FlakyHandle:
    """A file-like handle that raises on every second write."""

    def __init__(self, inner):
        self._inner = inner
        self.writes = 0

    def write(self, line):
        self.writes += 1
        if self.writes % 2 == 0:
            raise OSError("disk full")
        return self._inner.write(line)


class TestObserverFaultIsolation:
    """Telemetry faults must never fail the retrieval they observe."""

    def test_raising_observer_routes_to_the_loop_exception_handler(self, database):
        observer = _RaisingBatchObserver()
        captured = []

        async def run():
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, context: captured.append(context)
            )
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2),
                observers=[observer],
            )
            return await frontend.retrieve_batch([3, 9])

        records = asyncio.run(run())
        # The retrieval succeeded despite the observer raising on its batch.
        assert records == [database.record(3), database.record(9)]
        assert observer.calls == 1
        assert len(captured) == 1
        assert isinstance(captured[0]["exception"], RuntimeError)

    def test_raising_observe_flush_routes_to_the_loop_exception_handler(
        self, database
    ):
        observer = _RaisingFlushObserver()
        captured = []

        async def run():
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, context: captured.append(context)
            )
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2),
                observers=[observer],
            )
            return await frontend.retrieve_batch([5, 11])

        records = asyncio.run(run())
        assert records == [database.record(5), database.record(11)]
        assert observer.calls == 1
        assert len(captured) == 1
        assert isinstance(captured[0]["exception"], RuntimeError)

    def test_raising_jsonl_sink_never_corrupts_a_flush(self, database, tmp_path):
        import json

        from repro.obs import ObservabilityHub

        path = tmp_path / "events.jsonl"
        handle = open(path, "w", encoding="utf-8")
        flaky = _FlakyHandle(handle)
        hub = ObservabilityHub(jsonl_path=flaky)

        async def run():
            frontend = AsyncPIRFrontend(
                make_client(database),
                reference_replicas(database),
                policy=BatchingPolicy(max_batch_size=2),
            )
            hub.attach(frontend)
            records = await frontend.retrieve_batch([1, 2, 3, 4])
            return frontend, records

        frontend, records = asyncio.run(run())
        handle.close()
        # Every retrieval succeeded even though half the exports raised.
        assert records == [database.record(i) for i in (1, 2, 3, 4)]
        assert frontend.metrics.flush_reasons == {FLUSH_ON_SIZE: 2}
        # The sink chain swallowed the faults (counted, remembered)...
        assert hub.events.dropped > 0
        assert isinstance(hub.events.last_error, OSError)
        # ...and the file holds only complete JSON lines: the whole line is
        # serialised before the single write, so a raising handle can fail
        # only between records, never inside one.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert "name" in record and "seq" in record and "now" in record
        # The healthy sinks kept receiving every event the flaky one dropped.
        assert len(hub.ring.events()) > len(lines)


class TestReplicaElasticityMidFlush:
    """Replica adds and drains racing live flushes stay invisible in records.

    The fleet's :class:`ReplicaGroup` slots plug straight into the async
    frontend (they expose ``server_id``/``answer_batch``), so the
    writer-preferring quiesce is what orders a scale action against
    in-flight flushes: stage runs off-gate in a worker thread while
    submits keep flowing, and only the commit (or the drain) holds the
    writer slot.
    """

    def make_fleet(self, database, initial_replicas=1):
        from repro.shard.fleet import CandidateKind, FleetRouter
        from repro.shard.plan import ShardPlan

        client = make_client(database)
        # Reference-kind children: the stateless numpy scan is safe under
        # genuinely overlapping flushes (the simulated PIM children are
        # not, and this suite deliberately overlaps flushes with scaling).
        reference = CandidateKind(
            kind="reference",
            preloaded=True,
            per_query_seconds=lambda n, r: 0.0,
            preload_seconds=lambda n, r: 0.0,
        )
        router = FleetRouter(
            client,
            database,
            ShardPlan.uniform(database.num_records, 2),
            [0.0, 0.0],
            candidates=[reference],
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
            initial_replicas=initial_replicas,
        )
        frontend = AsyncPIRFrontend(
            client,
            router.replicas,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=0.01),
        )
        return router, frontend

    def test_replica_add_mid_flush_is_bit_identical(self, database):
        async def run():
            router, frontend = self.make_fleet(database)
            indices = list(range(0, 48))

            async def submit_all():
                return await asyncio.gather(
                    *(frontend.submit(i) for i in indices)
                )

            submits = asyncio.ensure_future(submit_all())
            await asyncio.sleep(0.005)  # let flushes get in flight
            # Stage off-gate (worker thread), commit under the quiesce.
            staged = await asyncio.to_thread(router.stage_replicas)
            await frontend.reconfigure(lambda: router.commit_replicas(staged))
            records = await submits
            await frontend.close()
            return router, frontend, records

        router, frontend, records = asyncio.run(run())
        assert records == [database.record(i) for i in range(0, 48)]
        assert router.replica_count == 2
        assert frontend.metrics.reconfigurations == 1
        assert frontend.inflight_flushes == 0
        # The second member genuinely serves traffic afterwards.
        for group in router.replicas:
            assert group.size == 2

    def test_drain_mid_flush_is_bit_identical(self, database):
        async def run():
            router, frontend = self.make_fleet(database, initial_replicas=2)
            indices = list(range(64, 112))

            async def submit_all():
                return await asyncio.gather(
                    *(frontend.submit(i) for i in indices)
                )

            submits = asyncio.ensure_future(submit_all())
            await asyncio.sleep(0.005)
            # drain_replica's own (structural) gate nests harmlessly inside
            # the async writer gate; the quiesce has already drained every
            # in-flight flush by the time the members are popped.
            await frontend.reconfigure(router.drain_replica)
            records = await submits
            await frontend.close()
            return router, frontend, records

        router, frontend, records = asyncio.run(run())
        assert records == [database.record(i) for i in range(64, 112)]
        assert router.replica_count == 1
        assert frontend.metrics.reconfigurations == 1

    def test_updates_between_stage_and_commit_reach_the_new_member(self, database):
        async def run():
            router, frontend = self.make_fleet(database)
            staged = await asyncio.to_thread(router.stage_replicas)
            # A write lands while the staging is out: journaled and replayed.
            new_bytes = bytes(database.record_size)
            router.apply_updates([(9, new_bytes)])
            await frontend.reconfigure(lambda: router.commit_replicas(staged))
            # Round-robin: consecutive lone submits hit both members.
            first = await frontend.submit(9)
            second = await frontend.submit(9)
            await frontend.close()
            return router, new_bytes, first, second

        router, new_bytes, first, second = asyncio.run(run())
        assert first == second == new_bytes
        assert router.replica_count == 2
