"""Fleet routing: capability-aware shard placement and fleet retrieval."""

import pytest

from repro.common.errors import ConfigurationError
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard.fleet import (
    CandidateKind,
    FleetRouter,
    default_candidates,
    heats_from_trace,
    plan_placements,
    render_placements,
)
from repro.shard.plan import ShardPlan


def make_client(database, seed=41):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


class TestDefaultCandidates:
    def test_two_pim_deployment_kinds(self):
        candidates = default_candidates()
        kinds = {c.kind: c for c in candidates}
        assert set(kinds) == {"im-pir", "im-pir-streamed"}
        assert kinds["im-pir"].preloaded
        assert not kinds["im-pir-streamed"].preloaded

    def test_streamed_pays_transfer_per_query_preloaded_once(self):
        candidates = {c.kind: c for c in default_candidates()}
        records, size = 4096, 32
        preloaded = candidates["im-pir"]
        streamed = candidates["im-pir-streamed"]
        assert streamed.per_query_seconds(records, size) > preloaded.per_query_seconds(
            records, size
        )
        assert preloaded.preload_seconds(records, size) > 0
        assert streamed.preload_seconds(records, size) == 0.0


class TestPlacements:
    def test_hot_shards_preloaded_cold_shards_streamed(self):
        """The acceptance property: capability metadata routes hot and cold
        shards to different backend kinds."""
        plan = ShardPlan.uniform(4096, 4)
        heats = [500.0, 0.0, 0.0, 300.0]  # shards 0/3 hot, 1/2 cold
        placements = plan_placements(plan, 32, heats)
        kinds = [p.kind for p in placements]
        assert kinds == ["im-pir", "im-pir-streamed", "im-pir-streamed", "im-pir"]
        assert placements[0].preloaded and not placements[1].preloaded
        assert len({p.kind for p in placements}) == 2

    def test_window_cost_is_cheapest_available(self):
        plan = ShardPlan.uniform(1024, 2)
        heats = [100.0, 0.0]
        placements = plan_placements(plan, 32, heats)
        for placement, heat in zip(placements, heats):
            for candidate in default_candidates():
                alternative = candidate.preload_seconds(
                    placement.shard.num_records, 32
                ) + heat * candidate.per_query_seconds(placement.shard.num_records, 32)
                assert placement.window_cost_seconds <= alternative + 1e-12

    def test_empty_shards_are_skipped(self):
        plan = ShardPlan.uniform(2, 5)
        placements = plan_placements(plan, 8, [1.0, 1.0, 0.0, 0.0, 0.0])
        assert len(placements) == 2

    def test_custom_candidates_and_validation(self):
        plan = ShardPlan.uniform(100, 2)
        flat = CandidateKind(
            kind="reference",
            preloaded=True,
            per_query_seconds=lambda n, r: 0.0,
            preload_seconds=lambda n, r: 0.0,
        )
        placements = plan_placements(plan, 8, [1.0, 1.0], candidates=[flat])
        assert all(p.kind == "reference" for p in placements)
        with pytest.raises(ConfigurationError):
            plan_placements(plan, 8, [1.0])  # wrong heat count
        with pytest.raises(ConfigurationError):
            plan_placements(plan, 8, [1.0, -2.0])  # negative heat
        with pytest.raises(ConfigurationError):
            plan_placements(plan, 8, [1.0, 1.0], candidates=[])

    def test_render_placements_mentions_every_shard(self):
        plan = ShardPlan.uniform(1024, 3)
        lines = render_placements(plan_placements(plan, 32, [9.0, 0.0, 2.0]))
        assert len(lines) == 4  # header + one per shard
        assert "kind" in lines[0]


class TestHeatsFromTrace:
    def test_counts_per_owning_shard(self):
        plan = ShardPlan.uniform(100, 4)
        heats = heats_from_trace(plan, [0, 1, 2, 99, 99, 50])
        assert heats == [3.0, 0.0, 1.0, 2.0]

    def test_empty_trace_all_cold(self):
        plan = ShardPlan.uniform(100, 4)
        assert heats_from_trace(plan, []) == [0.0] * 4

    def test_units_agree_with_online_telemetry(self):
        """The docstring's promise — per-window queries per shard — now holds
        by construction: the offline helper routes through the control
        plane's HeatTracker, so a one-window trace and a live tracker fed
        the same indices report identical heats."""
        from repro.control.telemetry import HeatTracker

        plan = ShardPlan.uniform(100, 4)
        trace = [0, 1, 2, 99, 99, 50]
        tracker = HeatTracker(plan)
        tracker.observe_batch(trace, now=0.0)
        assert heats_from_trace(plan, trace) == tracker.heats()

    def test_arrival_stamped_trace_matches_live_tracker(self):
        """With arrival stamps the offline helper replays the trace through
        windows/decay, matching a live tracker configured identically."""
        from repro.control.telemetry import HeatTracker

        plan = ShardPlan.uniform(100, 4)
        indices = [0, 1, 99, 99, 0, 50]
        arrivals = [0.0, 0.3, 0.6, 0.9, 1.2, 1.5]
        tracker = HeatTracker(plan, window_seconds=0.5, decay=0.5)
        for index, now in zip(indices, arrivals):
            tracker.observe_batch([index], now)
        stamped = heats_from_trace(
            plan, indices, arrival_seconds=arrivals, window_seconds=0.5, decay=0.5
        )
        assert stamped == tracker.heats()
        assert stamped != heats_from_trace(plan, indices)  # one-window counts
        with pytest.raises(ConfigurationError):
            heats_from_trace(plan, indices, arrival_seconds=[0.0])


class TestFleetRouter:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(256, 16, seed=52)

    def test_end_to_end_retrieval_with_mixed_kinds(self, database):
        plan = ShardPlan.uniform(database.num_records, 4)
        trace = [3] * 30 + [70] * 20 + [250]  # shards 0/1 hot, 3 barely warm
        heats = heats_from_trace(plan, trace)
        router = FleetRouter(
            make_client(database),
            database,
            plan,
            heats,
            policy=BatchingPolicy(max_batch_size=4),
        )
        kinds = set(router.placement_kinds())
        assert kinds == {"im-pir", "im-pir-streamed"}  # hot and cold differ
        indices = [0, 70, 128, 200, 250, 3]
        records = router.retrieve_batch(indices)
        assert records == [database.record(i) for i in indices]
        assert router.metrics.total_makespan_seconds > 0

    def test_both_replicas_are_fleets_with_same_plan(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = FleetRouter(
            make_client(database), database, plan, heats=[10.0, 0.0]
        )
        assert len(router.fleets) == 2
        for fleet in router.fleets:
            assert fleet.plan is plan
            member_kinds = [
                child.capabilities().name for _, child in fleet.backend.members
            ]
            assert member_kinds == ["im-pir", "im-pir-streamed"]

    def test_placements_carry_cost_estimates(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = FleetRouter(make_client(database), database, plan, heats=[10.0, 0.0])
        hot, cold = router.placements
        assert hot.per_query_seconds > 0
        assert hot.window_cost_seconds >= hot.preload_seconds
        assert cold.window_cost_seconds == 0.0
        assert "im-pir" in router.describe_placements()

    def test_plan_must_match_database(self, database):
        with pytest.raises(ConfigurationError):
            FleetRouter(
                make_client(database),
                database,
                ShardPlan.uniform(100, 2),
                heats=[1.0, 1.0],
            )
