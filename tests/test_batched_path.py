"""Batched execute_many path: bit-equivalence with the sequential path.

These tests pin the invariants that make the batched path safe to enable
everywhere:

* **payload equivalence** — ``answer_many`` returns exactly the bytes the
  ``answer`` loop returns, on every registered backend and on adversarial
  shapes (single record, more shards than records, non-power-of-two domains,
  1-byte records, batches of one, all-zero selector shares);
* **simulated-cost equivalence** on host-side backends — every phase except
  ``eval`` charges the same seconds (``eval`` differs by design: the batch
  path prices the backend's batch cost model, the per-query path its
  latency model), and the ``execute_many`` override matches the generic
  per-row fallback both in bytes and in per-query phase charges;
* the **documented amortisation** on the PIM backends — one DPU dispatch
  serves the whole batch, so per-dispatch fixed charges (transfer latency,
  launch overhead, streamed segment copies) shrink the batch's total for
  every amortisable phase below the sequential total, never increase any
  phase, and leave the host-side ``aggregate`` charge exactly per-query
  (see ``run_dpu_pipeline_many`` for the formula, and
  ``test_dpu_pipeline_many.py`` for its exact-value pins).
"""

import numpy as np
import pytest

from repro.common.events import PhaseTimer
from repro.core.engine import PIRBackend, available_backends, create_server
from repro.dpf.dpf import DPF, EvalStats
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.dpf.naive import NaiveShare
from repro.pir.messages import NaiveQuery
from repro.pir.server import PIRServer


def _batch(num_records, record_size, batch, *, seed=7, stride=13):
    database = Database.random(num_records, record_size, seed=seed)
    client = PIRClient(num_records, record_size, seed=seed + 1, prg=make_prg("numpy"))
    queries = [client.query((i * stride) % num_records)[0] for i in range(batch)]
    return database, queries


def _non_eval(timer):
    return {k: v for k, v in timer.durations.items() if k != "eval"}


#: Backends that batch at DPU-dispatch level: their batched path amortises
#: fixed per-dispatch charges instead of replicating sequential costs.
PIM_KINDS = {"im-pir", "im-pir-streamed"}


def _assert_amortized(sequential_timers, batched_timers):
    """The documented PIM amortisation, phase by phase.

    Same phase set; ``aggregate`` (the host fold, phase 6) stays exactly
    per-query; every other phase's batch **total** comes out at or below the
    sequential total (per-dispatch fixed charges are paid once instead of B
    times, and per-row kernel work never grows), with the DPU-bound phases
    strictly cheaper for B > 1.
    """
    seq_phases = {k for t in sequential_timers for k in _non_eval(t)}
    bat_phases = {k for t in batched_timers for k in _non_eval(t)}
    assert bat_phases == seq_phases
    for seq, bat in zip(sequential_timers, batched_timers):
        assert bat.get("aggregate") == pytest.approx(seq.get("aggregate"))
    for phase in seq_phases - {"aggregate"}:
        seq_total = sum(t.get(phase) for t in sequential_timers)
        bat_total = sum(t.get(phase) for t in batched_timers)
        assert bat_total <= seq_total + 1e-12
        if len(batched_timers) > 1:
            assert bat_total < seq_total


@pytest.mark.parametrize("backend", sorted(available_backends()))
class TestEveryBackend:
    def _engine(self, backend, database):
        kwargs = {"segment_records": 128} if backend == "im-pir-streamed" else {}
        return create_server(backend, database, server_id=0, **kwargs).engine

    def test_payloads_and_phases_match_sequential(self, backend):
        database, queries = _batch(256, 32, 5)
        engine = self._engine(backend, database)
        sequential = [engine.answer(query) for query in queries]
        batched = engine.answer_many(queries)
        for seq, bat in zip(sequential, batched.results):
            assert seq.answer.payload == bat.answer.payload
            if backend not in PIM_KINDS:
                assert _non_eval(seq.breakdown) == _non_eval(bat.breakdown)
        if backend in PIM_KINDS:
            _assert_amortized(
                [r.breakdown for r in sequential],
                [r.breakdown for r in batched.results],
            )

    def test_execute_many_override_matches_generic_fallback(self, backend):
        database, queries = _batch(256, 32, 5)
        engine = self._engine(backend, database)
        selectors = engine.selector_matrix(queries)
        lanes = [0] * len(queries)
        override_timers = [PhaseTimer() for _ in queries]
        fallback_timers = [PhaseTimer() for _ in queries]
        got = engine.backend.execute_many(selectors, override_timers, lanes)
        want = PIRBackend.execute_many(
            engine.backend, selectors, fallback_timers, lanes
        )
        assert np.array_equal(got, want)
        if backend in PIM_KINDS:
            _assert_amortized(fallback_timers, override_timers)
        else:
            for a, b in zip(override_timers, fallback_timers):
                assert a.durations == b.durations

    def test_batch_of_one(self, backend):
        database, queries = _batch(64, 32, 1)
        engine = self._engine(backend, database)
        expected = engine.answer(queries[0]).answer.payload
        batched = engine.answer_many(queries)
        assert [r.answer.payload for r in batched.results] == [expected]


class TestEdgeShapes:
    @pytest.mark.parametrize(
        "num_records,record_size",
        [(1, 32), (2, 32), (1, 1), (100, 1), (37, 24), (200, 32)],
    )
    def test_reference_odd_shapes(self, num_records, record_size):
        # Non-power-of-two domains, single-record databases, 1-byte records.
        database, queries = _batch(num_records, record_size, 4)
        engine = create_server("reference", database, server_id=0).engine
        sequential = [engine.answer(query).answer.payload for query in queries]
        batched = engine.answer_many(queries)
        assert [r.answer.payload for r in batched.results] == sequential

    def test_more_shards_than_records(self):
        database, queries = _batch(2, 32, 3)
        engine = create_server(
            "sharded", database, server_id=0, num_shards=4
        ).engine
        sequential = [engine.answer(query).answer.payload for query in queries]
        batched = engine.answer_many(queries)
        assert [r.answer.payload for r in batched.results] == sequential

    def test_sharded_threads_executor(self):
        database, queries = _batch(128, 32, 6)
        engine = create_server(
            "sharded", database, server_id=0, num_shards=4, executor="threads"
        ).engine
        sequential = [engine.answer(query).answer.payload for query in queries]
        batched = engine.answer_many(queries)
        assert [r.answer.payload for r in batched.results] == sequential

    def test_all_zero_naive_share(self):
        # An all-zero selector share is a legal additive share; the batched
        # accumulator row must stay zero, not inherit a neighbour's XOR.
        database = Database.random(32, 16, seed=3)
        engine = create_server("reference", database, server_id=0).engine
        zero = NaiveQuery(
            query_id=0,
            server_id=0,
            share=NaiveShare(server_id=0, bits=np.zeros(32, dtype=np.uint8)),
            num_records=32,
        )
        one_hot = np.zeros(32, dtype=np.uint8)
        one_hot[5] = 1
        hot = NaiveQuery(
            query_id=1,
            server_id=0,
            share=NaiveShare(server_id=0, bits=one_hot),
            num_records=32,
        )
        batched = engine.answer_many([zero, hot, zero])
        payloads = [r.answer.payload for r in batched.results]
        assert payloads[0] == bytes(16)
        assert payloads[2] == bytes(16)
        assert payloads[1] == database.record(5)

    def test_mixed_naive_and_dpf_batch(self):
        database = Database.random(64, 32, seed=4)
        client = PIRClient(64, 32, seed=5, prg=make_prg("numpy"))
        engine = create_server("reference", database, server_id=0).engine
        one_hot = np.zeros(64, dtype=np.uint8)
        one_hot[9] = 1
        naive = NaiveQuery(
            query_id=2,
            server_id=0,
            share=NaiveShare(server_id=0, bits=one_hot),
            num_records=64,
        )
        dpf_query = client.query(17)[0]
        sequential = [
            engine.answer(q).answer.payload for q in (naive, dpf_query)
        ]
        batched = engine.answer_many([naive, dpf_query])
        assert [r.answer.payload for r in batched.results] == sequential


class TestStatsRegression:
    def test_dpxor_stats_identical_bytes(self):
        # Batching must not discount the all-for-one scan: the server's dpXOR
        # counters after a batch equal those after the same queries one at a
        # time, byte for byte.
        database, queries = _batch(128, 32, 5)
        sequential = PIRServer(database, server_id=0)
        for query in queries:
            sequential.answer(query)
        batched = PIRServer(database, server_id=0)
        batched.engine.answer_many(queries)
        assert batched.stats.dpxor == sequential.stats.dpxor
        assert batched.stats.queries_answered == sequential.stats.queries_answered

    def test_eval_stats_identical(self):
        database, queries = _batch(128, 32, 5)
        sequential = PIRServer(database, server_id=0)
        for query in queries:
            sequential.answer(query)
        batched = PIRServer(database, server_id=0)
        batched.engine.answer_many(queries)
        assert batched.stats.eval == sequential.stats.eval


class TestEvalFullMany:
    @pytest.mark.parametrize("prg_backend", ["numpy", "aes"])
    def test_matches_eval_full_per_key(self, prg_backend):
        prg = make_prg(prg_backend)
        dpf = DPF(domain_bits=6, prg=prg)
        keys = [dpf.gen(alpha)[0] for alpha in (0, 7, 63)]
        keys += [dpf.gen(12)[1]]
        expected = np.stack([dpf.eval_full(key) for key in keys])
        got = dpf.eval_full_many(keys)
        assert np.array_equal(got, expected)

    def test_num_points_truncation(self):
        dpf = DPF(domain_bits=5, prg=make_prg("numpy"))
        keys = [dpf.gen(3)[0], dpf.gen(19)[1]]
        expected = np.stack(
            [dpf.eval_full(key, num_points=21) for key in keys]
        )
        got = dpf.eval_full_many(keys, num_points=21)
        assert np.array_equal(got, expected)
        assert got.shape == (2, 21)

    def test_stats_match_sequential(self):
        prg_seq = make_prg("numpy")
        dpf_seq = DPF(domain_bits=6, prg=prg_seq)
        keys_seq = [dpf_seq.gen(alpha)[0] for alpha in (1, 2, 3)]
        seq_stats = EvalStats()
        for key in keys_seq:
            dpf_seq.eval_full(key, stats=seq_stats)

        prg_bat = make_prg("numpy")
        dpf_bat = DPF(domain_bits=6, prg=prg_bat)
        keys_bat = [dpf_bat.gen(alpha)[0] for alpha in (1, 2, 3)]
        bat_stats = EvalStats()
        dpf_bat.eval_full_many(keys_bat, stats=bat_stats)

        assert bat_stats == seq_stats

    def test_single_key_batch(self):
        dpf = DPF(domain_bits=4, prg=make_prg("numpy"))
        key = dpf.gen(11)[0]
        assert np.array_equal(
            dpf.eval_full_many([key]), dpf.eval_full(key)[None, :]
        )

    def test_empty_batch_rejected(self):
        dpf = DPF(domain_bits=4, prg=make_prg("numpy"))
        with pytest.raises(Exception):
            dpf.eval_full_many([])


class TestSelectorBufferReuse:
    def test_recycled_buffer_does_not_corrupt_results(self):
        database, queries = _batch(128, 32, 4)
        engine = create_server("reference", database, server_id=0).engine
        first = [r.answer.payload for r in engine.answer_many(queries).results]
        # Same engine, new flush: the pooled buffer is reused and must be
        # fully overwritten for the new batch.
        other = _batch(128, 32, 4, seed=7, stride=29)[1]
        engine.answer_many(other)
        again = [r.answer.payload for r in engine.answer_many(queries).results]
        assert again == first

    def test_shape_change_reallocates(self):
        database, queries = _batch(128, 32, 4)
        engine = create_server("reference", database, server_id=0).engine
        engine.answer_many(queries)
        smaller = queries[:2]
        expected = [engine.answer(q).answer.payload for q in smaller]
        got = [r.answer.payload for r in engine.answer_many(smaller).results]
        assert got == expected
