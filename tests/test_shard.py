"""The sharding subsystem: plans, sharded backends, update routing.

Mirrors ``tests/test_engine.py`` one layer up: a sharded replica fleet must
be bit-identical to the unsharded server for every backend kind, across
edge shard shapes (1-record shards, shard count > record count,
non-power-of-two splits), and bulk updates must touch only the owning
shard's child.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, DatabaseError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.engine import available_backends, create_server
from repro.core.impir import PIMClusterBackend
from repro.core.partitioning import aligned_chunk_bounds
from repro.dpf.prf import make_prg
from repro.pim.kernels import DB_BUFFER
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.shard.backend import (
    BARE_BACKEND_KINDS,
    ShardedBackend,
    ShardedServer,
    bare_backend_factory,
)
from repro.shard.plan import ShardPlan


def make_client(database, seed=17):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


class TestAlignedChunkBounds:
    def test_matches_unaligned_split_when_block_is_one(self):
        database = Database.random(257, 4, seed=1)
        assert aligned_chunk_bounds(257, 3) == database.chunk_bounds(3)

    def test_internal_boundaries_land_on_block_multiples(self):
        bounds = aligned_chunk_bounds(100, 3, block_records=8)
        for start, stop in bounds[:-1]:
            assert start % 8 == 0
            assert stop % 8 == 0 or stop == 100
        assert bounds[-1][1] == 100

    def test_more_chunks_than_blocks_leaves_empty_tail(self):
        bounds = aligned_chunk_bounds(10, 5, block_records=8)
        assert bounds[0] == (0, 8)
        assert bounds[1] == (8, 10)
        assert all(start == stop for start, stop in bounds[2:])

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            aligned_chunk_bounds(10, 0)
        with pytest.raises(ConfigurationError):
            aligned_chunk_bounds(10, 2, block_records=0)


class TestShardPlan:
    def test_uniform_plan_tiles_the_domain(self):
        plan = ShardPlan.uniform(100, 3)
        assert plan.num_shards == 3
        assert [s.num_records for s in plan.shards] == [34, 33, 33]
        assert plan.shards[0].start == 0 and plan.shards[-1].stop == 100

    def test_block_alignment_respected(self):
        plan = ShardPlan.uniform(100, 3, block_records=16)
        for shard in plan.shards[:-1]:
            assert shard.stop % 16 == 0

    def test_shard_count_beyond_record_count(self):
        plan = ShardPlan.uniform(2, 6)
        assert plan.num_shards == 6
        assert len(plan.non_empty_shards) == 2
        assert plan.shard_for_record(0).index == 0
        assert plan.shard_for_record(1).index == 1

    def test_shard_for_record_and_routing(self):
        plan = ShardPlan.uniform(100, 4)
        assert plan.shard_for_record(0).index == 0
        assert plan.shard_for_record(99).index == 3
        routed = plan.route_records([0, 1, 99, 50])
        assert set(routed) == {0, 3, 2}
        assert routed[0] == [0, 1]
        with pytest.raises(DatabaseError):
            plan.shard_for_record(100)

    def test_split_selector_pairs_with_slices(self):
        database = Database.random(37, 4, seed=5)
        plan = ShardPlan.uniform(37, 5)
        selector = np.arange(37, dtype=np.uint8)
        slices = plan.split_selector(selector)
        shards_db = plan.slice_database(database)
        assert len(slices) == len(shards_db) == len(plan.non_empty_shards)
        reassembled = np.concatenate(slices)
        assert np.array_equal(reassembled, selector)
        for shard, shard_db in zip(plan.non_empty_shards, shards_db):
            assert shard_db.num_records == shard.num_records

    def test_malformed_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPlan.from_bounds(10, [(0, 4), (5, 10)])  # gap
        with pytest.raises(ConfigurationError):
            ShardPlan.from_bounds(10, [(0, 4), (4, 9)])  # short
        with pytest.raises(ConfigurationError):
            ShardPlan(num_records=10, shards=())
        with pytest.raises(ConfigurationError):
            plan = ShardPlan.uniform(10, 2)
            plan.split_selector(np.zeros(9, dtype=np.uint8))

    def test_wrong_database_shape_rejected(self):
        plan = ShardPlan.uniform(10, 2)
        with pytest.raises(ConfigurationError):
            plan.slice_database(Database.random(11, 4, seed=2))


#: (num_records, record_size, num_shards) covering the edge shard shapes.
SHARD_SHAPES = [
    (1, 8, 1),  # single record, single shard
    (3, 4, 3),  # every shard holds exactly one record
    (2, 8, 5),  # more shards than records (empty trailing shards)
    (257, 16, 3),  # prime record count, non-power-of-two split
    (300, 8, 7),  # non-power-of-two everything
]


class TestShardedEquivalence:
    """Sharded retrieval is bit-identical to unsharded for every backend."""

    @pytest.mark.parametrize("kind", BARE_BACKEND_KINDS)
    @pytest.mark.parametrize("num_records,record_size,num_shards", SHARD_SHAPES)
    def test_sharded_matches_unsharded(self, kind, num_records, record_size, num_shards):
        database = Database.random(
            num_records, record_size, seed=num_records * 13 + record_size
        )
        client = make_client(database)
        unsharded = create_server("reference", database)
        sharded = ShardedServer(
            database, num_shards=num_shards, child_kind=kind, prg=make_prg("numpy")
        )
        for index in sorted({0, num_records // 2, num_records - 1}):
            query = client.query(index)[0]
            assert (
                sharded.engine.answer(query).answer.payload
                == unsharded.engine.answer(query).answer.payload
            ), f"{kind} sharded {num_shards} ways disagrees at index {index}"

    @pytest.mark.parametrize("kind", BARE_BACKEND_KINDS)
    def test_reconstruction_through_sharded_replicas(self, kind):
        database = Database.random(128, 16, seed=9)
        client = make_client(database, seed=23)
        replicas = [
            ShardedServer(
                database,
                server_id=i,
                num_shards=4,
                child_kind=kind,
                prg=make_prg("numpy"),
            )
            for i in (0, 1)
        ]
        for index in (0, 63, 127):
            queries = client.query(index)
            answers = [replicas[q.server_id].engine.answer(q).answer for q in queries]
            assert client.reconstruct(answers) == database.record(index), kind

    def test_batch_equivalence(self):
        database = Database.random(300, 8, seed=44)
        client = make_client(database, seed=5)
        queries = [client.query(i)[0] for i in (0, 123, 299, 7)]
        reference = [
            r.answer.payload
            for r in create_server("reference", database).engine.answer_many(queries).results
        ]
        for kind in BARE_BACKEND_KINDS:
            sharded = ShardedServer(
                database, num_shards=3, child_kind=kind, prg=make_prg("numpy")
            )
            payloads = [
                r.answer.payload for r in sharded.answer_batch(queries).results
            ]
            assert payloads == reference, kind

    def test_block_aligned_shards_stay_bit_identical(self):
        """PIM children keep their partitioning invariants on aligned shards."""
        database = Database.random(200, 16, seed=31)
        client = make_client(database, seed=7)
        unsharded = create_server("reference", database)
        sharded = ShardedServer(
            database,
            num_shards=3,
            child_kind="im-pir",
            block_records=16,
            prg=make_prg("numpy"),
        )
        for shard in sharded.plan.shards[:-1]:
            assert shard.stop % 16 == 0
        for index in (0, 57, 199):
            query = client.query(index)[0]
            assert (
                sharded.engine.answer(query).answer.payload
                == unsharded.engine.answer(query).answer.payload
            )

    def test_mixed_kind_fleet_is_bit_identical(self):
        """A fleet can mix preloaded PIM and streamed children per shard."""
        database = Database.random(120, 8, seed=3)
        client = make_client(database, seed=11)
        plan = ShardPlan.uniform(120, 3)
        factories = {
            0: bare_backend_factory("im-pir"),
            1: bare_backend_factory("im-pir-streamed"),
            2: bare_backend_factory("reference"),
        }
        sharded = ShardedServer(
            database,
            plan=plan,
            child_factory=lambda shard: factories[shard.index](shard),
            prg=make_prg("numpy"),
        )
        unsharded = create_server("reference", database)
        for index in (0, 60, 119):
            query = client.query(index)[0]
            assert (
                sharded.engine.answer(query).answer.payload
                == unsharded.engine.answer(query).answer.payload
            )
        caps = sharded.engine.backend.capabilities()
        assert not caps.supports_naive  # PIM members do not serve naive queries
        assert not caps.preloaded  # the streamed member is not resident


class TestShardedCapabilitiesAndTiming:
    def test_capabilities_aggregate_members(self):
        database = Database.random(64, 8, seed=2)
        sharded = ShardedServer(
            database, num_shards=2, child_kind="im-pir", prg=make_prg("numpy")
        )
        caps = sharded.engine.backend.capabilities()
        assert caps.name == "sharded"
        assert caps.lanes >= 1 and caps.batch_workers >= 1
        assert caps.preloaded
        assert not caps.supports_naive
        assert caps.max_records is not None and caps.max_records >= 64
        assert "2 shards" in caps.description

    def test_unprepared_backend_reports_and_rejects(self):
        backend = ShardedBackend(bare_backend_factory("reference"), num_shards=2)
        assert backend.capabilities().name == "sharded"
        with pytest.raises(ProtocolError):
            backend.execute(np.zeros(4, dtype=np.uint8), PhaseTimer())
        with pytest.raises(ProtocolError):
            backend.apply_updates(Database.random(4, 4, seed=1), [0])

    def test_unprepared_backend_advertises_no_residency_or_capacity(self):
        """A fleet with no members must not claim a preloaded database.

        The default ``BackendCapabilities`` says ``preloaded=True`` with
        unbounded capacity — an unprepared fleet advertising that would
        mislead router/frontend sizing.
        """
        caps = ShardedBackend(bare_backend_factory("reference")).capabilities()
        assert caps.preloaded is False
        assert caps.max_records == 0
        assert "unprepared" in caps.description
        # Prepared, the same backend reports residency again.
        backend = ShardedBackend(bare_backend_factory("reference"), num_shards=2)
        backend.prepare(Database.random(16, 4, seed=3))
        prepared = backend.capabilities()
        assert prepared.preloaded is True
        assert prepared.max_records is None  # reference children are unbounded

    def test_timed_children_charge_parallel_phases(self):
        """The fleet's breakdown is a per-phase max, not a sum, over shards."""
        database = Database.random(128, 16, seed=4)
        client = make_client(database, seed=3)
        query = client.query(5)[0]
        sharded = ShardedServer(
            database, num_shards=2, child_kind="im-pir", prg=make_prg("numpy")
        )
        breakdown = sharded.engine.answer(query).breakdown
        assert breakdown.total > 0
        single = ShardedServer(
            database, num_shards=1, child_kind="im-pir", prg=make_prg("numpy")
        )
        single_query = make_client(database, seed=3).query(5)[0]
        single_breakdown = single.engine.answer(single_query).breakdown
        # Two half-size shards scanning in parallel must not cost more than
        # one full-size shard scanning alone.
        assert breakdown.total <= single_breakdown.total + 1e-12

    def test_preload_report_merged_across_shards(self):
        database = Database.random(64, 8, seed=6)
        sharded = ShardedServer(
            database, num_shards=2, child_kind="im-pir", prg=make_prg("numpy")
        )
        report = sharded.preload_report
        assert report is not None and report.total > 0

    def test_pinned_plan_must_match_database(self):
        with pytest.raises(ConfigurationError):
            ShardedServer(
                Database.random(64, 8, seed=20),
                plan=ShardPlan.uniform(128, 2),
                prg=make_prg("numpy"),
            )

    def test_reprepare_with_different_shape(self):
        sharded = ShardedServer(
            Database.random(64, 8, seed=7), num_shards=4, prg=make_prg("numpy")
        )
        new_db = Database.random(33, 16, seed=8)
        sharded.engine.prepare(new_db)
        assert sharded.plan.num_records == 33
        assert sharded.plan.num_shards == 4
        client = make_client(new_db, seed=9)
        reference = create_server("reference", new_db)
        query = client.query(32)[0]
        assert (
            sharded.engine.answer(query).answer.payload
            == reference.engine.answer(query).answer.payload
        )


class _CountingBackend:
    """Wraps a child backend, counting prepare/apply_updates calls."""

    def __init__(self, inner):
        self._inner = inner
        self.prepares = 0
        self.updates = 0

    def prepare(self, database):
        self.prepares += 1
        return self._inner.prepare(database)

    def apply_updates(self, database, dirty_indices):
        self.updates += 1
        return self._inner.apply_updates(database, dirty_indices)

    def capabilities(self):
        return self._inner.capabilities()

    def execute(self, selector_bits, breakdown, lane=0):
        return self._inner.execute(selector_bits, breakdown, lane=lane)

    def latency_eval_seconds(self, num_records):
        return self._inner.latency_eval_seconds(num_records)

    def batch_eval_seconds(self, num_records):
        return self._inner.batch_eval_seconds(num_records)


class TestShardedUpdates:
    def test_updates_route_to_owning_shard_only(self):
        database = Database.random(96, 8, seed=10)
        children = []

        def factory(shard):
            child = _CountingBackend(bare_backend_factory("im-pir")(shard))
            children.append(child)
            return child

        sharded = ShardedServer(
            database, num_shards=3, child_factory=factory, prg=make_prg("numpy")
        )
        assert [c.prepares for c in children] == [1, 1, 1]

        # Both dirty records live in shard 0 ([0, 32)).
        timer = sharded.apply_updates([(3, b"\xaa" * 8), (17, b"\xbb" * 8)])
        assert timer.total > 0
        assert [c.updates for c in children] == [1, 0, 0]
        assert [c.prepares for c in children] == [1, 1, 1]

        client = make_client(sharded.database, seed=12)
        reference = create_server("reference", sharded.database)
        for index in (3, 17, 40, 95):
            query = client.query(index)[0]
            assert (
                sharded.engine.answer(query).answer.payload
                == reference.engine.answer(query).answer.payload
            )
        assert sharded.database.record(3) == b"\xaa" * 8

    def test_untouched_shard_mram_buffers_identical(self):
        """Updating shard 0 leaves the other shards' DPU MRAM bytes untouched."""
        database = Database.random(96, 8, seed=13)
        sharded = ShardedServer(
            database, num_shards=3, child_kind="im-pir", prg=make_prg("numpy")
        )

        def mram_snapshot(member_index):
            _, child = sharded.backend.members[member_index]
            assert isinstance(child, PIMClusterBackend)
            return [
                bytes(dpu.mram.read(DB_BUFFER))
                for cluster in child.clusters
                for dpu in cluster.dpu_set.dpus
            ]

        before = [mram_snapshot(i) for i in range(3)]
        sharded.apply_updates([(5, b"\xcc" * 8)])
        after = [mram_snapshot(i) for i in range(3)]
        assert after[0] != before[0]  # owning shard re-copied its dirty block
        assert after[1] == before[1]
        assert after[2] == before[2]

    def test_children_without_apply_updates_reprepare(self):
        database = Database.random(64, 8, seed=14)
        children = []

        def factory(shard):
            child = bare_backend_factory("reference")(shard)
            counting = _CountingBackend(child)
            # Hide the wrapper's apply_updates so the re-prepare path runs.
            counting.apply_updates = None
            children.append(counting)
            return counting

        sharded = ShardedServer(
            database, num_shards=2, child_factory=factory, prg=make_prg("numpy")
        )
        sharded.apply_updates([(40, b"\xdd" * 8)])  # shard 1 owns [32, 64)
        assert [c.prepares for c in children] == [1, 2]
        assert sharded.database.record(40) == b"\xdd" * 8

    def test_empty_update_list_is_noop(self):
        database = Database.random(16, 4, seed=15)
        sharded = ShardedServer(database, num_shards=2, prg=make_prg("numpy"))
        timer = sharded.apply_updates([])
        assert timer.total == 0.0
        assert sharded.database == database

    def test_update_slices_match_prepare_slices(self):
        """Regression: apply_updates must slice shards exactly like prepare.

        88 records with block_records=8 over 3 shards gives [0,32), [32,64)
        and [64,88) — the last shard is multi-block and non-power-of-two.
        Updating records there (and in the other shards) must leave every
        retrieval bit-identical to a fresh unsharded server over the updated
        database; a drift between the two slicing code paths would hand the
        PIM children's partial MRAM re-copy the wrong bytes.
        """
        database = Database.random(88, 16, seed=21)
        sharded = ShardedServer(
            database,
            num_shards=3,
            block_records=8,
            child_kind="im-pir",
            prg=make_prg("numpy"),
        )
        last = sharded.plan.shards[-1]
        assert (last.start, last.stop) == (64, 88)
        assert last.num_records % 8 == 0  # multi-block
        assert last.num_records & (last.num_records - 1) != 0  # non-power-of-two

        updates = [
            (0, b"\x11" * 16),
            (40, b"\x22" * 16),
            (64, b"\x33" * 16),
            (80, b"\x44" * 16),
            (87, b"\x55" * 16),
        ]
        sharded.apply_updates(updates)
        fresh = create_server("reference", sharded.database)
        client = make_client(sharded.database, seed=23)
        for index in (0, 31, 33, 40, 63, 64, 65, 80, 87):
            query = client.query(index)[0]
            assert (
                sharded.engine.answer(query).answer.payload
                == fresh.engine.answer(query).answer.payload
            ), index
        for index, record in updates:
            assert sharded.database.record(index) == record


class TestShardedRegistry:
    def test_sharded_is_registered(self):
        assert "sharded" in available_backends()

    def test_registry_builder_honours_kwargs(self):
        database = Database.random(48, 8, seed=16)
        server = create_server(
            "sharded", database, num_shards=3, child_kind="im-pir", block_records=4
        )
        assert server.num_shards == 3
        assert not server.engine.backend.capabilities().supports_naive
        client = make_client(database, seed=18)
        reference = create_server("reference", database)
        query = client.query(47)[0]
        assert (
            server.engine.answer(query).answer.payload
            == reference.engine.answer(query).answer.payload
        )

    def test_registry_builder_forwards_child_config(self):
        from repro.core.config import IMPIRConfig
        from repro.pim.config import scaled_down_config

        database = Database.random(48, 8, seed=21)
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=2))
        server = create_server(
            "sharded", database, num_shards=2, child_kind="im-pir", config=config
        )
        for _, child in server.backend.members:
            assert child.config is config

    def test_routing_helpers(self):
        database = Database.random(60, 4, seed=19)
        server = create_server("sharded", database, num_shards=4)
        assert server.shard_for_record(0).index == 0
        assert server.shard_for_record(59).index == 3
        assert sum(server.shard_utilization().values()) == 60

    def test_registry_builder_forwards_executor(self):
        database = Database.random(32, 8, seed=23)
        server = create_server("sharded", database, num_shards=2, executor="threads")
        assert server.backend.executor == "threads"


class TestShardExecutors:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            ShardedBackend(bare_backend_factory("reference"), executor="processes")
        with pytest.raises(ConfigurationError, match="executor"):
            ShardedServer(
                Database.random(8, 4, seed=1), executor="greenlets", prg=make_prg("numpy")
            )

    def test_threads_executor_is_bit_identical_with_identical_simulated_time(self):
        """The executor changes wall-clock overlap only, never results/timers."""
        database = Database.random(96, 16, seed=31)
        serial = ShardedServer(
            database, num_shards=3, child_kind="im-pir", prg=make_prg("numpy")
        )
        threaded = ShardedServer(
            database,
            num_shards=3,
            child_kind="im-pir",
            executor="threads",
            prg=make_prg("numpy"),
        )
        client = make_client(database, seed=33)
        for index in (0, 50, 95):
            query = client.query(index)[0]
            serial_result = serial.engine.answer(query)
            threaded_result = threaded.engine.answer(query)
            assert serial_result.answer.payload == threaded_result.answer.payload
            assert (
                serial_result.breakdown.durations == threaded_result.breakdown.durations
            )

    def test_threads_executor_overlaps_child_scans(self):
        """Per-shard execute calls genuinely run at the same wall-clock time."""
        import time

        windows = []

        def slow_factory(shard):
            inner = bare_backend_factory("reference")(shard)

            class _SlowChild:
                def prepare(self, shard_db):
                    return inner.prepare(shard_db)

                def capabilities(self):
                    return inner.capabilities()

                def latency_eval_seconds(self, num_records):
                    return 0.0

                def batch_eval_seconds(self, num_records):
                    return 0.0

                def execute(self, selector_bits, breakdown, lane=0):
                    start = time.monotonic()
                    time.sleep(0.03)
                    result = inner.execute(selector_bits, breakdown, lane=lane)
                    windows.append((start, time.monotonic()))
                    return result

            return _SlowChild()

        database = Database.random(64, 8, seed=35)
        sharded = ShardedServer(
            database,
            num_shards=2,
            child_factory=slow_factory,
            executor="threads",
            prg=make_prg("numpy"),
        )
        client = make_client(database, seed=37)
        query = client.query(11)[0]
        payload = sharded.engine.answer(query).answer.payload
        reference = create_server("reference", database)
        assert payload == reference.engine.answer(query).answer.payload
        assert len(windows) == 2
        (start_a, end_a), (start_b, end_b) = windows
        assert max(start_a, start_b) < min(end_a, end_b)


class _ClosableChild:
    """Delegating child that records ``close`` calls."""

    def __init__(self, inner):
        self._inner = inner
        self.closed = 0

    def close(self):
        self.closed += 1

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestClosePropagation:
    """Every path that retires a child must release it — a long-lived fleet
    reshapes for its whole life and must never leak scan pools."""

    @staticmethod
    def _tracked_factory(children):
        inner = bare_backend_factory("reference")

        def build(shard):
            child = _ClosableChild(inner(shard))
            children.append(child)
            return child

        return build

    def test_close_closes_every_child_and_the_pool(self):
        database = Database.random(64, 8, seed=21)
        children = []
        backend = ShardedBackend(
            self._tracked_factory(children), num_shards=3, executor="threads"
        )
        backend.prepare(database)
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        assert [child.closed for child in children] == [1, 1, 1]

    def test_swap_child_closes_only_the_outgoing_member(self):
        database = Database.random(64, 8, seed=22)
        children = []
        backend = ShardedBackend(self._tracked_factory(children), num_shards=2)
        backend.prepare(database)
        shard, _ = backend.members[1]
        incoming = _ClosableChild(bare_backend_factory("reference")(shard))
        backend.swap_child(shard.index, incoming)
        assert [child.closed for child in children] == [0, 1]
        assert incoming.closed == 0

    def test_reshape_closes_replaced_children_and_keeps_reused(self):
        database = Database.random(64, 8, seed=23)
        children = []
        backend = ShardedBackend(self._tracked_factory(children), num_shards=2)
        backend.prepare(database)
        first_generation = list(children)
        backend.apply_topology(backend.plan.split_shard(0, 16))
        # Shard 0 was replaced by its two halves; shard 1's range survived
        # the reshape byte-for-byte, so its child is reused and stays open.
        assert [child.closed for child in first_generation] == [1, 0]
        new_children = [c for c in children if c not in first_generation]
        assert len(new_children) == 2
        assert all(child.closed == 0 for child in new_children)

    def test_reprepare_closes_the_old_generation(self):
        database = Database.random(64, 8, seed=24)
        children = []
        backend = ShardedBackend(self._tracked_factory(children), num_shards=2)
        backend.prepare(database)
        old_generation = list(children)
        backend.prepare(database)
        new_generation = [c for c in children if c not in old_generation]
        assert [child.closed for child in old_generation] == [1, 1]
        assert all(child.closed == 0 for child in new_generation)
