"""Hot-record cache: LRU + heat admission, frontend short-circuit, invalidation."""

import asyncio

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.control.cache import HotRecordCache
from repro.control.telemetry import HeatTracker
from repro.dpf.prf import make_prg
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.pir.server import PIRServer
from repro.shard.fleet import FleetRouter, heats_from_trace
from repro.shard.plan import ShardPlan


def make_client(database, seed=31):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def reference_replicas(database):
    return [PIRServer(database, server_id=i, prg=make_prg("numpy")) for i in (0, 1)]


class CountingReplica:
    """Wraps a replica and counts ``answer_batch`` dispatches."""

    def __init__(self, inner):
        self._inner = inner
        self.server_id = inner.server_id
        self.calls = 0

    def answer_batch(self, queries):
        self.calls += 1
        return self._inner.answer_batch(queries)


class TestLRU:
    def test_eviction_order_and_hit_refresh(self):
        cache = HotRecordCache(capacity=2)
        cache.admit(1, b"a")
        cache.admit(2, b"b")
        assert cache.get(1) == b"a"  # refreshes 1 to MRU
        cache.admit(3, b"c")  # evicts 2, the LRU
        assert cache.get(2) is None
        assert cache.get(1) == b"a" and cache.get(3) == b"c"
        assert cache.stats.evictions == 1
        assert cache.resident_indices() == [1, 3]

    def test_re_admission_refreshes_without_double_count(self):
        cache = HotRecordCache(capacity=2)
        cache.admit(1, b"a")
        cache.admit(1, b"a2")
        assert len(cache) == 1
        assert cache.stats.admissions == 1
        assert cache.get(1) == b"a2"

    def test_invalidate_and_clear(self):
        cache = HotRecordCache(capacity=4)
        cache.admit(1, b"a")
        cache.admit(2, b"b")
        assert cache.invalidate([1, 7]) == 1  # 7 was never resident
        assert cache.get(1) is None
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotRecordCache(capacity=0)
        with pytest.raises(ConfigurationError):
            HotRecordCache(capacity=2, admit_min_heat=-1.0)


class TestHeatInformedAdmission:
    def test_cold_shard_records_are_declined(self):
        plan = ShardPlan.uniform(100, 4)
        tracker = HeatTracker(plan)
        tracker.observe_batch([0] * 10, now=0.0)  # shard 0 hot, rest cold
        cache = HotRecordCache(capacity=4, tracker=tracker, admit_min_heat=5.0)
        assert cache.admit(3, b"hot")  # shard 0: heat 10 >= 5
        assert not cache.admit(99, b"cold")  # shard 3: heat 0 < 5
        assert cache.stats.rejected_cold == 1
        assert 99 not in cache

    def test_no_tracker_means_plain_lru(self):
        cache = HotRecordCache(capacity=4, admit_min_heat=0.0)
        assert cache.admit(5, b"x")


class TestFrontendIntegration:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(128, 16, seed=44)

    def test_cache_requires_dedup(self, database):
        cache = HotRecordCache(capacity=4)
        with pytest.raises(ProtocolError):
            PIRFrontend(
                make_client(database), reference_replicas(database), cache=cache
            )
        with pytest.raises(ProtocolError):
            AsyncPIRFrontend(
                make_client(database), reference_replicas(database), cache=cache
            )

    def test_repeat_index_served_without_replica_dispatch(self, database):
        cache = HotRecordCache(capacity=4)
        replicas = [CountingReplica(r) for r in reference_replicas(database)]
        frontend = PIRFrontend(
            make_client(database),
            replicas,
            policy=BatchingPolicy(max_batch_size=2),
            dedup=True,
            cache=cache,
        )
        # Batch 1 scans index 7 and admits it; batch 2 asks only for 7
        # twice, so the whole batch is a cache hit and dispatches nothing.
        assert frontend.retrieve_batch([7, 9]) == [database.record(7), database.record(9)]
        calls_after_first = replicas[0].calls
        assert frontend.retrieve_batch([7, 7]) == [database.record(7)] * 2
        assert replicas[0].calls == calls_after_first
        assert replicas[1].calls == calls_after_first
        assert frontend.metrics.cache_hits == 2  # leader + duplicate follower
        assert cache.stats.hits == 1  # one distinct-index lookup hit
        assert frontend.metrics.requests_served == 4
        # Cache hits are not double-counted as dedup wins: nothing in either
        # batch was answered from another request's *scan*.
        assert frontend.metrics.deduped_requests == 0

    def test_mixed_batch_scans_only_misses(self, database):
        cache = HotRecordCache(capacity=4)
        frontend = PIRFrontend(
            make_client(database),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=2),
            dedup=True,
            cache=cache,
        )
        frontend.retrieve_batch([3, 5])
        records = frontend.retrieve_batch([3, 8])  # 3 cached, 8 scanned
        assert records == [database.record(3), database.record(8)]
        assert frontend.metrics.cache_hits == 1
        assert 8 in cache  # freshly scanned records are offered to the cache

    def test_async_frontend_cache_parity(self, database):
        cache = HotRecordCache(capacity=4)
        replicas = [CountingReplica(r) for r in reference_replicas(database)]
        frontend = AsyncPIRFrontend(
            make_client(database),
            replicas,
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=0.01),
            dedup=True,
            cache=cache,
        )

        async def run():
            first = await frontend.retrieve_batch([7, 9])
            calls = replicas[0].calls
            second = await frontend.retrieve_batch([7, 7])
            return first, second, calls

        first, second, calls = asyncio.run(run())
        assert first == [database.record(7), database.record(9)]
        assert second == [database.record(7)] * 2
        assert replicas[0].calls == calls  # all-cached batch dispatched nothing
        assert frontend.metrics.cache_hits == 2

    def test_cache_hits_zero_without_cache(self, database):
        frontend = PIRFrontend(
            make_client(database), reference_replicas(database), dedup=True
        )
        frontend.retrieve_batch([7, 7, 9])
        assert frontend.metrics.cache_hits == 0
        assert frontend.metrics.deduped_requests == 1


class TestAsyncInvalidation:
    def test_async_apply_updates_invalidates_after_replicas_updated(self):
        from repro.shard.backend import ShardedServer

        database = Database.random(64, 8, seed=46)
        cache = HotRecordCache(capacity=4)
        replicas = [
            ShardedServer(database, server_id=i, num_shards=2, prg=make_prg("numpy"))
            for i in (0, 1)
        ]
        frontend = AsyncPIRFrontend(
            make_client(database, seed=33),
            replicas,
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=0.01),
            dedup=True,
            cache=cache,
        )
        fresh = bytes(8)

        async def run():
            first = await frontend.retrieve_batch([5, 9])
            await frontend.apply_updates([(5, fresh)])
            resident_after_update = 5 in cache
            second = await frontend.retrieve_batch([5, 5])
            return first, resident_after_update, second

        first, resident_after_update, second = asyncio.run(run())
        assert first == [database.record(5), database.record(9)]
        assert not resident_after_update  # dirty index dropped
        assert second == [fresh, fresh]  # re-scanned from the updated replicas

    def test_apply_updates_rejects_replicas_without_the_hook(self):
        """And rejects them *before* any replica is updated: a mid-loop
        failure would leave the replica set permanently inconsistent."""
        database = Database.random(64, 8, seed=47)
        frontend = PIRFrontend(
            make_client(database, seed=34), reference_replicas(database)
        )
        with pytest.raises(ProtocolError):
            frontend.apply_updates([(0, bytes(8))])

    def test_apply_updates_quiesces_in_flight_flushes(self):
        """An update must drain in-flight flushes first: a flush scanning
        mixed old/new replica states would XOR-reconstruct garbage, and one
        scanning old bytes could re-admit them after the invalidation."""
        import threading

        from repro.shard.backend import ShardedServer

        database = Database.random(64, 8, seed=49)
        hold = threading.Event()

        class SlowReplica:
            """Holds each replica's first scan until the test releases it."""

            def __init__(self, inner):
                self._inner = inner
                self.server_id = inner.server_id
                self._held = False

            def answer_batch(self, queries):
                if not self._held:
                    self._held = True
                    hold.wait(5.0)
                return self._inner.answer_batch(queries)

            def apply_updates(self, updates):
                return self._inner.apply_updates(updates)

        cache = HotRecordCache(capacity=4)
        replicas = [
            SlowReplica(
                ShardedServer(database, server_id=i, num_shards=2, prg=make_prg("numpy"))
            )
            for i in (0, 1)
        ]
        frontend = AsyncPIRFrontend(
            make_client(database, seed=36),
            replicas,
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=5.0),
            dedup=True,
            cache=cache,
        )
        fresh = bytes(8)

        async def run():
            flush_task = asyncio.create_task(frontend.retrieve_batch([5, 9]))
            while frontend._inflight_flushes == 0:  # scan now held in threads
                await asyncio.sleep(0)
            update_task = asyncio.create_task(frontend.apply_updates([(5, fresh)]))
            await asyncio.sleep(0.05)
            blocked = not update_task.done()  # waiting for the flush to drain
            hold.set()
            first = await flush_task
            await update_task
            second = await frontend.retrieve_batch([5])
            return first, blocked, second

        first, blocked, second = asyncio.run(run())
        assert blocked
        assert first == [database.record(5), database.record(9)]  # all-old, no tear
        assert second == [fresh]  # post-update scan, not a stale cache entry


class TestObserverFaultContainment:
    def test_async_observer_exception_does_not_fail_the_batch(self):
        database = Database.random(64, 8, seed=48)

        class ExplodingObserver:
            def observe_batch(self, indices, now):
                raise RuntimeError("migration failed")

        frontend = AsyncPIRFrontend(
            make_client(database, seed=35),
            reference_replicas(database),
            policy=BatchingPolicy(max_batch_size=1, max_wait_seconds=0.01),
            observers=[ExplodingObserver()],
        )
        captured = []

        async def run():
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(lambda _, context: captured.append(context))
            # The record arrives even though the observer blows up post-flush.
            return await frontend.submit(5)

        record = asyncio.run(run())
        assert record == database.record(5)
        assert len(captured) == 1
        assert isinstance(captured[0]["exception"], RuntimeError)


class TestFleetInvalidation:
    def test_apply_updates_invalidates_and_reserves_fresh_bytes(self):
        database = Database.random(128, 16, seed=45)
        plan = ShardPlan.uniform(database.num_records, 4)
        heats = heats_from_trace(plan, [0] * 10)
        cache = HotRecordCache(capacity=8)
        router = FleetRouter(
            make_client(database, seed=32),
            database,
            plan,
            heats,
            policy=BatchingPolicy(max_batch_size=2),
            dedup=True,
            cache=cache,
        )
        assert router.retrieve_batch([7, 9]) == [database.record(7), database.record(9)]
        assert 7 in cache
        new_record = bytes(range(16))
        router.apply_updates([(7, new_record)])
        assert 7 not in cache  # dirty index dropped before any re-read
        records = router.retrieve_batch([7, 7])
        assert records == [new_record] * 2  # scanned fresh, then fanned out
        assert cache.stats.invalidations == 1
