"""Full-domain evaluation strategies: equivalence and cost profiles."""

import numpy as np
import pytest

from repro.dpf.dpf import DPF
from repro.dpf.traversal import (
    BranchParallelTraversal,
    LevelByLevelTraversal,
    MemoryBoundedTraversal,
    TraversalStats,
    available_strategies,
    make_traversal,
)


@pytest.fixture(scope="module")
def dpf_and_key():
    dpf = DPF(domain_bits=9, seed=42)
    key0, _ = dpf.gen(311, 1)
    return dpf, key0


class TestFactory:
    def test_available_strategies(self):
        assert set(available_strategies()) == {
            "branch_parallel",
            "level_by_level",
            "memory_bounded",
        }

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_traversal("depth_first_magic")

    def test_memory_bounded_requires_power_of_two(self):
        with pytest.raises(ValueError):
            MemoryBoundedTraversal(chunk_leaves=100)

    def test_memory_bounded_requires_positive_chunk(self):
        with pytest.raises(ValueError):
            MemoryBoundedTraversal(chunk_leaves=0)


class TestEquivalence:
    def test_all_strategies_agree(self, dpf_and_key):
        dpf, key = dpf_and_key
        reference = LevelByLevelTraversal().eval_full(dpf, key)
        assert np.array_equal(reference, BranchParallelTraversal().eval_full(dpf, key))
        assert np.array_equal(
            reference, MemoryBoundedTraversal(chunk_leaves=32).eval_full(dpf, key)
        )

    def test_agree_with_dpf_eval_full(self, dpf_and_key):
        dpf, key = dpf_and_key
        assert np.array_equal(dpf.eval_full(key), LevelByLevelTraversal().eval_full(dpf, key))

    def test_truncated_domain(self, dpf_and_key):
        dpf, key = dpf_and_key
        reference = dpf.eval_full(key, num_points=300)
        for strategy in (
            LevelByLevelTraversal(),
            BranchParallelTraversal(),
            MemoryBoundedTraversal(chunk_leaves=64),
        ):
            assert np.array_equal(strategy.eval_full(dpf, key, num_points=300), reference)

    def test_chunk_larger_than_domain(self, dpf_and_key):
        dpf, key = dpf_and_key
        big_chunk = MemoryBoundedTraversal(chunk_leaves=4096).eval_full(dpf, key)
        assert np.array_equal(big_chunk, dpf.eval_full(key))


class TestCostProfiles:
    def test_branch_parallel_is_redundant(self, dpf_and_key):
        dpf, key = dpf_and_key
        level_stats, branch_stats = TraversalStats(), TraversalStats()
        LevelByLevelTraversal().eval_full(dpf, key, stats=level_stats)
        BranchParallelTraversal().eval_full(dpf, key, stats=branch_stats)
        assert branch_stats.prg_calls > level_stats.prg_calls
        assert branch_stats.redundancy_factor > 2.0
        assert level_stats.redundancy_factor == pytest.approx(1.0, rel=0.02)

    def test_memory_bounded_limits_peak_memory(self, dpf_and_key):
        dpf, key = dpf_and_key
        level_stats, bounded_stats = TraversalStats(), TraversalStats()
        LevelByLevelTraversal().eval_full(dpf, key, stats=level_stats)
        MemoryBoundedTraversal(chunk_leaves=16).eval_full(dpf, key, stats=bounded_stats)
        assert bounded_stats.peak_nodes_in_memory <= 16
        assert level_stats.peak_nodes_in_memory == dpf.domain_size

    def test_memory_bounded_cost_between_extremes(self, dpf_and_key):
        dpf, key = dpf_and_key
        stats = {name: TraversalStats() for name in ("level", "bounded", "branch")}
        LevelByLevelTraversal().eval_full(dpf, key, stats=stats["level"])
        MemoryBoundedTraversal(chunk_leaves=16).eval_full(dpf, key, stats=stats["bounded"])
        BranchParallelTraversal().eval_full(dpf, key, stats=stats["branch"])
        assert stats["level"].prg_calls <= stats["bounded"].prg_calls <= stats["branch"].prg_calls

    def test_stats_leaves_evaluated(self, dpf_and_key):
        dpf, key = dpf_and_key
        stats = TraversalStats()
        LevelByLevelTraversal().eval_full(dpf, key, num_points=200, stats=stats)
        assert stats.leaves_evaluated == 200

    def test_peak_memory_bytes_property(self):
        stats = TraversalStats(prg_calls=10, peak_nodes_in_memory=100, leaves_evaluated=64)
        assert stats.peak_memory_bytes == 100 * 17
