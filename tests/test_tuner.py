"""The measured serial-vs-threads scan policy (:mod:`repro.shard.tuner`).

The tuner is the one shard-layer component allowed to read a wall clock, so
these tests script the measurement instead: a :class:`ScanTuner` subclass
replaces ``_best_of`` with a queue of pre-decided timings (the scan legs
still execute, keeping the operand shapes honest) and the verdict logic,
bucketing, hysteresis, and persistence are checked deterministically.  The
end-to-end test drives ``executor="auto"`` through the registry with a
scripted tuner forced each way and asserts retrievals stay bit-identical
to the reference backend regardless of the verdict.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.engine import create_server
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.shard.tuner import ScanTuner


class _ScriptedTuner(ScanTuner):
    """A tuner whose measurements are a scripted queue, not a clock.

    ``calibrate`` consumes one value for the serial leg's chunk candidate
    (small shapes have exactly one) and one per configured worker count,
    in that order; the scan legs still run so shape errors surface.
    """

    def __init__(self, timings, **kwargs):
        super().__init__(clock=lambda: 0.0, **kwargs)
        self._timings = list(timings)

    def _best_of(self, run):
        run()
        return self._timings.pop(0)


class TestScanTuner:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScanTuner(repeats=0)
        with pytest.raises(ConfigurationError):
            ScanTuner(min_speedup=0.9)
        with pytest.raises(ConfigurationError):
            ScanTuner(worker_counts=(1, 2))
        with pytest.raises(ConfigurationError):
            ScanTuner(worker_counts=())
        with pytest.raises(ConfigurationError):
            ScanTuner(clock=lambda: 0.0).calibrate(0, 8, 4)

    def test_threads_verdict_records_the_winning_configuration(self):
        tuner = _ScriptedTuner([10.0, 4.0, 5.0], worker_counts=(2, 4), repeats=1)
        calibration = tuner.calibrate(64, 8, 8)
        assert calibration.executor == "threads"
        assert calibration.serial_seconds == 10.0
        assert calibration.threads_seconds == 4.0
        assert calibration.num_workers == 2  # the faster of the two counts
        assert calibration.threads_speedup == pytest.approx(2.5)
        assert tuner.executor_for(64, 8, 8) == "threads"

    def test_hysteresis_keeps_serial_on_marginal_thread_wins(self):
        # Threads wins raw (speedup ~1.05) but not by the 1.1x hysteresis
        # factor, so the verdict stays serial — no executor flapping on
        # measurement noise.
        tuner = _ScriptedTuner([10.0, 9.5], worker_counts=(2,), repeats=1)
        calibration = tuner.calibrate(64, 8, 8)
        assert calibration.executor == "serial"
        assert calibration.threads_speedup > 1.0

    def test_batch_bucketing_shares_one_calibration(self):
        tuner = _ScriptedTuner([3.0, 1.0], worker_counts=(2,), repeats=1)
        first = tuner.choose(64, 8, 17)
        second = tuner.choose(64, 8, 29)  # same power-of-two bucket: 32
        assert first is second
        assert first.batch == 32
        assert len(tuner.calibrations) == 1
        # A different bucket would need another measurement pass; the
        # scripted queue is empty, so crossing buckets must raise.
        with pytest.raises(IndexError):
            tuner.choose(64, 8, 64)

    def test_crossover_rows_carry_the_speedup(self):
        tuner = _ScriptedTuner([10.0, 4.0], worker_counts=(2,), repeats=1)
        tuner.calibrate(64, 8, 4)
        (row,) = tuner.crossover_rows()
        assert row["executor"] == "threads"
        assert row["threads_speedup"] == pytest.approx(2.5)
        assert row["num_records"] == 64

    def test_save_load_round_trip_and_override(self, tmp_path):
        path = tmp_path / "tuner.json"
        measured = _ScriptedTuner([10.0, 4.0], worker_counts=(2,), repeats=1)
        original = measured.calibrate(64, 8, 8)
        measured.save(path)

        restored = ScanTuner(clock=lambda: 0.0)
        assert restored.load(path) == 1
        assert restored.calibrations == [original]
        # The cached verdict answers without re-measuring.
        assert restored.executor_for(64, 8, 8) == "threads"

        # A loaded file overrides an existing same-shape calibration: the
        # saved bench run is the deliberate measurement.
        adhoc = _ScriptedTuner([1.0, 50.0], worker_counts=(2,), repeats=1)
        assert adhoc.calibrate(64, 8, 8).executor == "serial"
        adhoc.load(path)
        assert adhoc.executor_for(64, 8, 8) == "threads"

    def test_injectable_clock_is_the_measurement_source(self):
        ticks = []

        def clock():
            ticks.append(len(ticks))
            return float(len(ticks))

        tuner = ScanTuner(clock=clock, worker_counts=(2,), repeats=1)
        calibration = tuner.calibrate(32, 8, 4)
        assert ticks  # the injected clock was consulted
        # The stepping clock times every leg identically, so serial keeps
        # the verdict under the hysteresis rule.
        assert calibration.executor == "serial"
        assert calibration.serial_seconds == calibration.threads_seconds


class TestAutoExecutorEndToEnd:
    @pytest.mark.parametrize(
        "timings, verdict",
        [([10.0, 1.0], "threads"), ([10.0, 20.0], "serial")],
    )
    def test_auto_is_bit_identical_under_either_verdict(self, timings, verdict):
        database = Database.random(128, 16, seed=41)
        tuner = _ScriptedTuner(list(timings), worker_counts=(2,), repeats=1)
        auto = create_server(
            "sharded", database, num_shards=4, executor="auto", tuner=tuner
        )
        reference = create_server("reference", database)
        client = PIRClient(
            database.num_records, database.record_size, seed=43, prg=make_prg("numpy")
        )
        queries = [client.query(index)[0] for index in (0, 17, 64, 100, 127, 5)]
        batched = auto.engine.answer_many(queries)
        expected = [reference.engine.answer(query).answer.payload for query in queries]
        assert [r.answer.payload for r in batched.results] == expected
        # The flush consulted the tuner exactly once (one shape bucket) and
        # got the scripted verdict.
        (calibration,) = tuner.calibrations
        assert calibration.executor == verdict
        assert calibration.num_records == database.num_records
        auto.backend.close()
