"""Heat telemetry: decaying windows, clock discipline, frontend observe hook."""

import asyncio

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.control.telemetry import HeatTracker
from repro.dpf.prf import make_prg
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.pir.server import PIRServer
from repro.shard.fleet import heats_from_trace
from repro.shard.plan import ShardPlan


def make_plan(num_records=100, num_shards=4):
    return ShardPlan.uniform(num_records, num_shards)


class TestWindows:
    def test_first_window_reports_raw_counts(self):
        tracker = HeatTracker(make_plan())
        tracker.observe_batch([0, 1, 2, 99, 99, 50], now=0.0)
        assert tracker.heats() == [3.0, 0.0, 1.0, 2.0]
        assert tracker.windows_completed == 0
        assert tracker.observed_indices == 6

    def test_matches_offline_heats_from_trace(self):
        """The units-reconciliation satellite: offline planning and online
        telemetry produce the same numbers for the same sample."""
        plan = make_plan(256, 4)
        trace = [0, 1, 2, 99, 99, 250, 250, 250]
        tracker = HeatTracker(plan)
        tracker.observe_batch(trace, now=0.0)
        assert tracker.heats() == heats_from_trace(plan, trace)

    def test_completed_windows_fold_with_decay(self):
        tracker = HeatTracker(make_plan(), window_seconds=1.0, decay=0.5)
        tracker.observe_batch([0] * 8, now=0.0)  # window 0: 8 on shard 0
        tracker.observe_batch([99] * 4, now=1.0)  # rolls; window 1 in progress
        # Completed windows only (phase-stable): the in-progress window's 4
        # queries on shard 3 are not visible until it rolls.
        assert tracker.heats() == [8.0, 0.0, 0.0, 0.0]
        assert tracker.windows_completed == 1
        tracker.advance(2.0)  # window 1 completes
        assert tracker.heats() == [4.0, 0.0, 0.0, 2.0]

    def test_heats_are_phase_stable_within_a_window(self):
        """The estimate must not dip right after a roll: a rebalance pass
        firing early vs late in a window must see the same heats."""
        tracker = HeatTracker(make_plan(), window_seconds=1.0, decay=0.5)
        tracker.observe_batch([0] * 8, now=0.0)
        tracker.advance(1.0)
        just_after_roll = tracker.heats()
        tracker.observe_batch([0] * 8, now=1.9)  # late in the same window
        assert tracker.heats() == just_after_roll

    def test_idle_windows_decay_toward_zero(self):
        tracker = HeatTracker(make_plan(), window_seconds=1.0, decay=0.5)
        tracker.observe_batch([0] * 16, now=0.0)
        tracker.advance(3.5)  # rolls 3 windows: one with traffic, two empty
        heat = tracker.heats()[0]
        assert 0 < heat < 16.0
        assert heat == pytest.approx(16.0 * 0.5**2)

    def test_one_batch_may_roll_several_windows(self):
        tracker = HeatTracker(make_plan(), window_seconds=0.5)
        tracker.observe_batch([0], now=0.0)
        tracker.observe_batch([0], now=2.6)
        assert tracker.windows_completed == 5

    def test_reading_heats_does_not_mutate(self):
        tracker = HeatTracker(make_plan())
        tracker.observe_batch([0, 0, 99], now=0.0)
        assert tracker.heats() == tracker.heats()
        tracker.observe_batch([0], now=0.0)
        assert tracker.heats()[0] == 3.0

    def test_record_and_shard_heat_helpers(self):
        tracker = HeatTracker(make_plan())
        tracker.observe_batch([0, 1, 99], now=0.0)
        assert tracker.shard_heat(0) == 2.0
        assert tracker.record_heat(99) == 1.0
        with pytest.raises(ConfigurationError):
            tracker.shard_heat(7)


class TestClockDiscipline:
    def test_time_moves_forward(self):
        tracker = HeatTracker(make_plan())
        tracker.observe_batch([0], now=5.0)
        with pytest.raises(ProtocolError):
            tracker.advance(4.0)

    def test_first_observation_anchors_the_window(self):
        """A tracker fed from an event-loop clock (large arbitrary origin)
        must not roll thousands of windows on its first observation."""
        tracker = HeatTracker(make_plan(), window_seconds=1.0)
        tracker.observe_batch([0], now=123456.75)
        assert tracker.windows_completed == 0
        assert tracker.heats()[0] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeatTracker(make_plan(), window_seconds=0.0)
        with pytest.raises(ConfigurationError):
            HeatTracker(make_plan(), decay=1.0)
        with pytest.raises(ConfigurationError):
            HeatTracker(make_plan(), decay=-0.1)


class TestFrontendObserveHook:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(100, 16, seed=11)

    def make_client(self, database, seed=21):
        return PIRClient(
            database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
        )

    def replicas(self, database):
        return [PIRServer(database, server_id=i, prg=make_prg("numpy")) for i in (0, 1)]

    def test_sync_frontend_feeds_tracker_per_flush(self, database):
        tracker = HeatTracker(make_plan(), window_seconds=10.0)
        frontend = PIRFrontend(
            self.make_client(database),
            self.replicas(database),
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=100.0),
            observers=[tracker],
        )
        ids = [frontend.submit(i, arrival_seconds=0.1 * n) for n, i in enumerate([0, 1, 99])]
        frontend.close()
        for request_id, index in zip(ids, [0, 1, 99]):
            assert frontend.take_record(request_id) == database.record(index)
        assert tracker.observed_indices == 3
        assert tracker.heats() == [2.0, 0.0, 0.0, 1.0]

    def test_async_frontend_feeds_tracker_per_flush(self, database):
        tracker = HeatTracker(make_plan(), window_seconds=1000.0)
        frontend = AsyncPIRFrontend(
            self.make_client(database),
            self.replicas(database),
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=0.01),
            observers=[tracker],
        )

        async def run():
            return await frontend.retrieve_batch([0, 1, 99])

        records = asyncio.run(run())
        assert records == [database.record(i) for i in (0, 1, 99)]
        assert tracker.observed_indices == 3
        assert tracker.heats() == [2.0, 0.0, 0.0, 1.0]

    def test_observers_without_hook_are_ignored(self, database):
        frontend = PIRFrontend(
            self.make_client(database),
            self.replicas(database),
            observers=[object()],
        )
        assert frontend.retrieve_batch([5]) == [database.record(5)]
