"""GPU baseline: cost model and GPU-PIR server."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.dpf.prf import make_prg
from repro.gpu.config import GPU_BASELINE_CONFIG, GPUConfig
from repro.gpu.gpu_pir import GPUPIRServer
from repro.gpu.model import PHASE_DPXOR, PHASE_EVAL, PHASE_PCIE, GPUModel
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.server import PIRServer


class TestGPUConfig:
    def test_paper_platform(self):
        config = GPU_BASELINE_CONFIG
        assert config.vram_bytes == 24 * GIB
        assert config.memory_bandwidth == pytest.approx(1.01e12)

    def test_vram_fit_check(self):
        assert GPU_BASELINE_CONFIG.fits_in_vram(8 * GIB)
        assert not GPU_BASELINE_CONFIG.fits_in_vram(23 * GIB)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(memory_efficiency=0.0)


class TestGPUModel:
    @pytest.fixture()
    def model(self):
        return GPUModel(GPU_BASELINE_CONFIG)

    def test_eval_and_dpxor_scale_with_db(self, model):
        assert model.dpf_eval_seconds(1 << 26) > model.dpf_eval_seconds(1 << 20)
        assert model.dpxor_seconds(8 * GIB) > model.dpxor_seconds(GIB)

    def test_vram_resident_query_has_no_pcie_phase(self, model):
        breakdown = model.single_query_breakdown(GIB // 32, 32)
        assert breakdown.get(PHASE_PCIE) == 0.0
        assert breakdown.get(PHASE_EVAL) > 0
        assert breakdown.get(PHASE_DPXOR) > 0

    def test_vram_overflow_adds_pcie_streaming(self, model):
        breakdown = model.single_query_breakdown((32 * GIB) // 32, 32)
        assert breakdown.get(PHASE_PCIE) > 0
        # PCIe streaming dwarfs the in-VRAM scan: the capacity cliff.
        assert breakdown.get(PHASE_PCIE) > breakdown.get(PHASE_DPXOR)

    def test_batch_estimate_scales(self, model):
        small = model.batch_estimate(GIB // 32, 32, 32)
        large = model.batch_estimate(4 * GIB // 32, 32, 32)
        assert large.latency_seconds > small.latency_seconds
        assert small.vram_resident and large.vram_resident

    def test_batch_throughput_positive(self, model):
        estimate = model.batch_estimate(GIB // 32, 32, 64)
        assert estimate.throughput_qps > 0

    def test_invalid_batch_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.batch_estimate(100, 32, 0)

    def test_gpu_faster_than_cpu_baseline_at_1gib(self, model):
        """Fig. 12's qualitative ordering: GPU-PIR beats CPU-PIR on a 1 GB DB."""
        from repro.cpu.model import CPUModel

        cpu = CPUModel()
        num_records = GIB // 32
        assert (
            model.batch_estimate(num_records, 32, 32).throughput_qps
            > cpu.batch_estimate(num_records, 32, 32).throughput_qps
        )


class TestGPUPIRServer:
    @pytest.fixture()
    def setup(self, small_db):
        client = PIRClient(small_db.num_records, small_db.record_size, seed=9, prg=make_prg("numpy"))
        server = GPUPIRServer(small_db, server_id=1, prg=make_prg("numpy"))
        return client, server, small_db

    def test_functional_answers_match_reference(self, setup):
        client, server, db = setup
        reference = PIRServer(db, server_id=1, prg=make_prg("numpy"))
        query = client.query(17)[1]
        assert server.answer(query).payload == reference.answer(query).payload

    def test_vram_resident_property(self, setup):
        _, server, _ = setup
        assert server.vram_resident

    def test_answer_with_breakdown(self, setup):
        client, server, _ = setup
        result = server.answer_with_breakdown(client.query(5)[1])
        assert result.latency_seconds > 0

    def test_answer_batch(self, setup):
        client, server, _ = setup
        queries = [client.query(i)[1] for i in range(3)]
        batch = server.answer_batch(queries)
        assert len(batch.answers) == 3
        assert batch.latency_seconds > 0
        assert batch.throughput_qps > 0
