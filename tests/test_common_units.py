"""Unit helpers: byte units, formatting, throughput."""

import pytest

from repro.common import units


class TestByteUnits:
    def test_powers_of_two_convention(self):
        assert units.KB == 2**10
        assert units.MB == 2**20
        assert units.GB == 2**30

    def test_gib_round_trip(self):
        assert units.gib(1) == units.GIB
        assert units.bytes_to_gib(units.gib(3)) == pytest.approx(3.0)

    def test_mib_and_kib(self):
        assert units.mib(64) == 64 * units.MIB
        assert units.kib(24) == 24 * units.KIB

    def test_fractional_gib(self):
        assert units.gib(0.5) == units.GIB // 2

    def test_bytes_to_mib(self):
        assert units.bytes_to_mib(3 * units.MIB) == pytest.approx(3.0)


class TestFormatting:
    def test_format_bytes_kb(self):
        assert units.format_bytes(2048) == "2.00 KB"

    def test_format_bytes_gb(self):
        assert units.format_bytes(3 * units.GIB) == "3.00 GB"

    def test_format_bytes_small(self):
        assert units.format_bytes(12) == "12 B"

    def test_format_seconds_ms(self):
        assert units.format_seconds(0.0032) == "3.200 ms"

    def test_format_seconds_seconds(self):
        assert units.format_seconds(2.5).endswith(" s")

    def test_format_seconds_microseconds(self):
        assert units.format_seconds(4e-6).endswith(" us")


class TestThroughput:
    def test_throughput_qps(self):
        assert units.throughput_qps(32, 2.0) == pytest.approx(16.0)

    def test_throughput_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.throughput_qps(10, 0.0)

    def test_throughput_rejects_negative_time(self):
        with pytest.raises(ValueError):
            units.throughput_qps(10, -1.0)
