"""The unified engine: every backend answers identically through one layer.

The cross-backend equivalence suite required by the engine refactor: all
registered server variants must return bit-identical payloads for the same
query set, across random databases and edge shapes (one record,
non-power-of-two sizes, one-byte records).
"""

import pytest

from repro.common.errors import ProtocolError
from repro.core.config import IMPIRConfig
from repro.core.engine import (
    BackendCapabilities,
    QueryEngine,
    ReferenceBackend,
    available_backends,
    batch_scheduler_for,
    create_server,
    register_backend,
)
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.messages import PIRAnswer


def build_all_servers(database, server_id=0):
    """One server of every registered variant over ``database``."""
    servers = {}
    for name in available_backends():
        kwargs = {}
        if name == "im-pir-streamed" and database.num_records > 1:
            # Force a genuinely multi-pass configuration.
            kwargs["segment_records"] = max(1, -(-database.num_records // 2))
        servers[name] = create_server(name, database, server_id=server_id, **kwargs)
    return servers


EDGE_SHAPES = [
    (1, 1),  # single one-byte record
    (1, 32),  # single record
    (3, 1),  # non-power-of-two count, one-byte records
    (257, 16),  # prime record count
    (1024, 32),  # the paper's record format
]


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("num_records,record_size", EDGE_SHAPES)
    def test_all_backends_bit_identical(self, num_records, record_size):
        database = Database.random(num_records, record_size, seed=num_records * 31 + record_size)
        client = PIRClient(num_records, record_size, seed=17, prg=make_prg("numpy"))
        servers = build_all_servers(database)
        indices = sorted({0, num_records // 2, num_records - 1})
        for index in indices:
            query = client.query(index)[0]
            payloads = {
                name: server.engine.answer(query).answer.payload
                for name, server in servers.items()
            }
            assert len(set(payloads.values())) == 1, f"disagreement at index {index}: {payloads}"

    @pytest.mark.parametrize("num_records,record_size", EDGE_SHAPES)
    def test_reconstruction_through_every_backend(self, num_records, record_size):
        database = Database.random(num_records, record_size, seed=num_records * 7 + record_size)
        index = num_records - 1
        for name in available_backends():
            kwargs = {}
            if name == "im-pir-streamed" and num_records > 1:
                kwargs["segment_records"] = max(1, -(-num_records // 2))
            client = PIRClient(num_records, record_size, seed=23, prg=make_prg("numpy"))
            replicas = [
                create_server(name, database, server_id=i, **kwargs) for i in (0, 1)
            ]
            queries = client.query(index)
            answers = [replicas[q.server_id].engine.answer(q).answer for q in queries]
            assert client.reconstruct(answers) == database.record(index), name

    def test_batch_equivalence_across_backends(self):
        database = Database.random(300, 8, seed=44)
        client = PIRClient(300, 8, seed=5, prg=make_prg("numpy"))
        queries = [client.query(i)[0] for i in (0, 123, 299, 7)]
        servers = build_all_servers(database)
        batches = {
            name: [r.answer.payload for r in server.engine.answer_many(queries).results]
            for name, server in servers.items()
        }
        reference = batches.pop("reference")
        for name, payloads in batches.items():
            assert payloads == reference, name


class TestSharedValidation:
    """One copy of the validation rules, enforced for every backend."""

    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(128, 16, seed=9)

    @pytest.fixture(scope="class")
    def servers(self, database):
        return build_all_servers(database)

    def test_wrong_server_rejected_everywhere(self, database, servers):
        client = PIRClient(128, 16, seed=2, prg=make_prg("numpy"))
        query_for_other = client.query(3)[1]
        for name, server in servers.items():
            with pytest.raises(ProtocolError):
                server.engine.answer(query_for_other)

    def test_wrong_database_shape_rejected_everywhere(self, servers):
        other_client = PIRClient(64, 16, seed=3, prg=make_prg("numpy"))
        stale = other_client.query(0)[0]
        for name, server in servers.items():
            with pytest.raises(ProtocolError):
                server.engine.answer(stale)

    def test_naive_queries_only_where_supported(self, database, servers):
        naive_client = PIRClient(128, 16, scheme="naive", seed=4)
        query = naive_client.query(10)[0]
        for name, server in servers.items():
            caps = server.engine.backend.capabilities()
            if caps.supports_naive:
                payload = server.engine.answer(query).answer.payload
                assert len(payload) == database.record_size
            else:
                with pytest.raises(ProtocolError):
                    server.engine.answer(query)

    def test_empty_batch_rejected(self, servers):
        for name, server in servers.items():
            with pytest.raises(ProtocolError):
                server.engine.answer_many([])

    def test_unsupported_query_type_rejected(self, servers):
        for name, server in servers.items():
            with pytest.raises(ProtocolError):
                server.engine.answer(object())

    def test_lane_out_of_range_names_lane_and_bound(self, servers):
        """The error must say which lane failed and what the valid range is."""
        client = PIRClient(128, 16, seed=6, prg=make_prg("numpy"))
        for name, server in servers.items():
            lanes = server.engine.backend.capabilities().lanes
            with pytest.raises(
                ProtocolError, match=rf"lane 99 out of range \[0, {lanes}\)"
            ):
                server.engine.answer(client.query(0)[0], lane=99)
            with pytest.raises(ProtocolError, match=r"lane -1 out of range"):
                server.engine.answer(client.query(0)[0], lane=-1)


class TestCapabilities:
    def test_every_backend_reports_capabilities(self):
        database = Database.random(64, 8, seed=1)
        for name, server in build_all_servers(database).items():
            caps = server.engine.backend.capabilities()
            assert isinstance(caps, BackendCapabilities)
            assert caps.lanes >= 1
            assert caps.batch_workers >= 1
            assert caps.name

    def test_impir_lanes_track_clusters(self):
        database = Database.random(256, 16, seed=6)
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=2), num_clusters=4)
        server = create_server("im-pir", database, config=config)
        assert server.engine.backend.capabilities().lanes == 4

    def test_streamed_backend_not_preloaded(self):
        database = Database.random(64, 8, seed=3)
        server = create_server("im-pir-streamed", database, segment_records=16)
        caps = server.engine.backend.capabilities()
        assert not caps.preloaded
        assert server.backend.num_segments == 4

    def test_scheduler_sizing_rule(self):
        caps = BackendCapabilities(name="x", lanes=3, batch_workers=8)
        scheduler = batch_scheduler_for(caps, batch_size=2)
        assert scheduler.num_workers == 2  # never more workers than queries
        assert scheduler.num_clusters == 3


class TestBackendSurface:
    """The PIRBackend protocol surface: prepare / answer / answer_many."""

    def test_backend_answer_returns_payload_and_timer(self):
        database = Database.random(64, 8, seed=12)
        client = PIRClient(64, 8, seed=13, prg=make_prg("numpy"))
        server = create_server("im-pir", database)
        query = client.query(5)[0]
        payload, breakdown = server.backend.answer(query)
        assert payload == server.engine.answer(query).answer.payload
        assert breakdown.total > 0

    def test_backend_answer_many(self):
        database = Database.random(64, 8, seed=14)
        client = PIRClient(64, 8, seed=15, prg=make_prg("numpy"))
        server = create_server("reference", database)
        pairs = server.backend.answer_many([client.query(i)[0] for i in (1, 2)])
        assert len(pairs) == 2
        for payload, breakdown in pairs:
            assert len(payload) == 8

    def test_detached_backend_rejected(self):
        backend = ReferenceBackend()
        with pytest.raises(ProtocolError):
            backend.answer(None)

    def test_engine_requires_prepared_database(self):
        backend = ReferenceBackend()
        engine = QueryEngine(backend, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(16, 4, seed=1, prg=make_prg("numpy"))
        with pytest.raises(ProtocolError):
            engine.answer(client.query(0)[0])


class TestRegistry:
    def test_default_registry_contains_all_five(self):
        assert set(available_backends()) >= {
            "reference",
            "cpu",
            "gpu",
            "im-pir",
            "im-pir-streamed",
        }

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError):
            create_server("tpu", Database.random(4, 4, seed=1))

    def test_custom_backend_registration(self):
        calls = []

        def builder(db, server_id=0, **kwargs):
            calls.append(server_id)
            return create_server("reference", db, server_id=server_id)

        register_backend("custom-test", builder)
        try:
            server = create_server("custom-test", Database.random(8, 4, seed=2), server_id=0)
            assert calls == [0]
            assert hasattr(server, "engine")
        finally:
            from repro.core import engine as engine_module

            engine_module._BACKEND_BUILDERS.pop("custom-test", None)


class TestRePrepare:
    """prepare() may be called again with a differently-shaped database."""

    def test_pim_backend_reprepare_different_shape(self):
        server = create_server("im-pir", Database.random(4, 256, seed=31))
        new_db = Database.random(500, 8, seed=32)
        server.engine.prepare(new_db)
        client = PIRClient(500, 8, seed=33, prg=make_prg("numpy"))
        reference = create_server("reference", new_db)
        query = client.query(499)[0]
        assert (
            server.engine.answer(query).answer.payload
            == reference.engine.answer(query).answer.payload
        )
        caps = server.engine.backend.capabilities()
        assert caps.max_records is not None and caps.max_records >= 500

    def test_streamed_backend_reprepare_different_shape(self):
        server = create_server("im-pir-streamed", Database.random(100, 16, seed=34),
                               segment_records=40)
        new_db = Database.random(50, 64, seed=35)
        server.engine.prepare(new_db)
        client = PIRClient(50, 64, seed=36, prg=make_prg("numpy"))
        reference = create_server("reference", new_db)
        query = client.query(25)[0]
        assert (
            server.engine.answer(query).answer.payload
            == reference.engine.answer(query).answer.payload
        )


class TestAnswerMetadata:
    def test_costed_backends_stamp_simulated_seconds(self):
        database = Database.random(64, 8, seed=21)
        client = PIRClient(64, 8, seed=22, prg=make_prg("numpy"))
        timed = create_server("im-pir", database)
        untimed = create_server("reference", database)
        query = client.query(7)[0]
        timed_answer = timed.engine.answer(query).answer
        untimed_answer = untimed.engine.answer(query).answer
        assert isinstance(timed_answer, PIRAnswer) and isinstance(untimed_answer, PIRAnswer)
        assert timed_answer.simulated_seconds and timed_answer.simulated_seconds > 0
        assert untimed_answer.simulated_seconds is None
