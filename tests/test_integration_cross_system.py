"""Cross-system integration: every server implementation answers identically,
and the end-to-end workloads run through IM-PIR."""

import numpy as np
import pytest

from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRServer
from repro.cpu.cpu_pir import CPUPIRServer
from repro.dpf.prf import make_prg
from repro.gpu.gpu_pir import GPUPIRServer
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.server import PIRServer
from repro.workloads.certificate_transparency import build_ct_workload
from repro.workloads.credentials import build_credential_workload
from repro.workloads.traces import uniform_trace


@pytest.fixture(scope="module")
def shared_db():
    return Database.random(2048, 32, seed=77)


@pytest.fixture(scope="module")
def all_servers(shared_db):
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
    return {
        "reference": PIRServer(shared_db, server_id=0, prg=make_prg("numpy")),
        "cpu": CPUPIRServer(shared_db, server_id=0, prg=make_prg("numpy")),
        "gpu": GPUPIRServer(shared_db, server_id=0, prg=make_prg("numpy")),
        "impir": IMPIRServer(shared_db, config=config, server_id=0),
    }


class TestAllServersAgree:
    def test_identical_answers_for_same_query(self, shared_db, all_servers):
        client = PIRClient(shared_db.num_records, shared_db.record_size, seed=13, prg=make_prg("numpy"))
        for index in (0, 511, 1024, 2047):
            query = client.query(index)[0]
            payloads = {
                "reference": all_servers["reference"].answer(query).payload,
                "cpu": all_servers["cpu"].answer(query).payload,
                "gpu": all_servers["gpu"].answer(query).payload,
                "impir": all_servers["impir"].answer(query).answer.payload,
            }
            assert len(set(payloads.values())) == 1

    def test_full_protocol_through_each_architecture(self, shared_db):
        """Run both replicas on each architecture and reconstruct records."""
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))
        builders = {
            "cpu": lambda sid: CPUPIRServer(shared_db, server_id=sid, prg=make_prg("numpy")),
            "gpu": lambda sid: GPUPIRServer(shared_db, server_id=sid, prg=make_prg("numpy")),
            "impir": lambda sid: IMPIRServer(shared_db, config=config, server_id=sid),
        }
        for name, build in builders.items():
            client = PIRClient(shared_db.num_records, shared_db.record_size, seed=3, prg=make_prg("numpy"))
            servers = [build(0), build(1)]
            queries = client.query(1234)
            answers = []
            for query in queries:
                result = servers[query.server_id].answer(query)
                answers.append(result.answer if hasattr(result, "answer") else result)
            assert client.reconstruct(answers) == shared_db.record(1234), name


class TestWorkloadsThroughIMPIR:
    @pytest.fixture(scope="class")
    def impir_config(self):
        return IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=2)

    def test_certificate_transparency_audit(self, impir_config):
        log, database, trace = build_ct_workload(num_certificates=512, num_audits=6, seed=4)
        client = PIRClient(database.num_records, database.record_size, seed=8, prg=make_prg("numpy"))
        servers = [IMPIRServer(database, config=impir_config, server_id=i) for i in (0, 1)]
        for index in trace:
            queries = client.query(index)
            answers = [servers[q.server_id].answer(q).answer for q in queries]
            record = client.reconstruct(answers)
            assert log.verify_inclusion(database, index, record)

    def test_credential_checking(self, impir_config):
        corpus, database, trace, candidates, expected = build_credential_workload(
            num_credentials=512, num_checks=8, seed=6
        )
        client = PIRClient(database.num_records, database.record_size, seed=9, prg=make_prg("numpy"))
        servers = [IMPIRServer(database, config=impir_config, server_id=i) for i in (0, 1)]
        verdicts = []
        for index, candidate in zip(trace.indices, candidates):
            queries = client.query(index)
            answers = [servers[q.server_id].answer(q).answer for q in queries]
            record = client.reconstruct(answers)
            verdicts.append(corpus.is_compromised(candidate, record))
        assert verdicts == expected

    def test_batched_uniform_trace(self, impir_config):
        database = Database.random(1024, 32, seed=55)
        trace = uniform_trace(database.num_records, 16, seed=2)
        client = PIRClient(database.num_records, database.record_size, seed=11, prg=make_prg("numpy"))
        server0 = IMPIRServer(database, config=impir_config, server_id=0)
        server1 = IMPIRServer(database, config=impir_config, server_id=1)
        indices = list(trace)
        per_query = [client.query(i) for i in indices]
        batch0 = server0.answer_batch([q[0] for q in per_query])
        batch1 = server1.answer_batch([q[1] for q in per_query])
        for index, a0, a1 in zip(indices, batch0.answers, batch1.answers):
            assert client.reconstruct([a0, a1]) == database.record(index)


class TestQueryPrivacyIndependence:
    def test_server_work_is_index_independent(self, shared_db):
        """The all-for-one principle: the server scans the whole database no
        matter which index the client asked for."""
        client = PIRClient(shared_db.num_records, shared_db.record_size, seed=21, prg=make_prg("numpy"))
        server = PIRServer(shared_db, server_id=0, prg=make_prg("numpy"))
        scans = []
        for index in (0, shared_db.num_records // 2, shared_db.num_records - 1):
            before = server.stats.dpxor.records_scanned
            server.answer(client.query(index)[0])
            scans.append(server.stats.dpxor.records_scanned - before)
        assert len(set(scans)) == 1
        assert scans[0] == shared_db.num_records

    def test_single_query_share_reveals_nothing_obvious(self, shared_db):
        """A single server's selector share has ~N/2 bits set regardless of index."""
        from repro.dpf.dpf import DPF

        client = PIRClient(shared_db.num_records, shared_db.record_size, seed=31, prg=make_prg("numpy"))
        dpf = DPF(client.domain_bits, prg=make_prg("numpy"))
        weights = []
        for index in (0, 1, shared_db.num_records - 1):
            query = client.query(index)[0]
            bits = dpf.eval_full_bits(query.key, num_points=shared_db.num_records)
            weights.append(int(bits.sum()))
        n = shared_db.num_records
        for weight in weights:
            assert abs(weight - n / 2) < 5 * np.sqrt(n / 4)
