"""The closed control loop: damping economics, replica elasticity, the driver.

Covers the three PR-8 pieces in isolation and composed:

* :class:`DampingPolicy` / :class:`ReshapeDamper` — amortization math,
  range cooldowns, and the flap-resistance property the damper exists for
  (an oscillating heat trace reshapes an undamped fleet repeatedly and a
  damped one not at all);
* :class:`AutoscalePolicy` / :class:`ReplicaAutoscaler` — hysteresis bands,
  sustain streaks, bounds and cooldowns, plus the stage/commit journal on
  :class:`ReplicaGroup` that keeps elastic members bit-identical;
* :class:`AsyncControlDriver` — simulated-clock passes through the async
  frontend's writer gate, error survival, and managed lifecycle via
  :meth:`ControlPlane.start_driver`.
"""

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.control.autoscaler import (
    AsyncControlDriver,
    AutoscalePolicy,
    DampingPolicy,
    ReplicaAutoscaler,
    ReshapeDamper,
    best_option,
    kind_window_cost,
)
from repro.control.plane import controlled_fleet
from repro.control.rebalancer import Rebalancer
from repro.control.telemetry import HeatTracker
from repro.dpf.prf import make_prg
from repro.obs import HealthSignal
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard.fleet import FleetRouter, default_candidates
from repro.shard.plan import ShardPlan


@pytest.fixture(scope="module")
def database():
    return Database.random(128, 16, seed=97)


def make_client(database, seed=31):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def make_router(database, num_shards=2, heats=None, seed=31, **kwargs):
    plan = ShardPlan.uniform(database.num_records, num_shards)
    return FleetRouter(
        make_client(database, seed=seed),
        database,
        plan,
        heats if heats is not None else [0.0] * num_shards,
        policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
        **kwargs,
    )


class TestDampingPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DampingPolicy(amortize_windows=0.0)
        with pytest.raises(ConfigurationError):
            DampingPolicy(cooldown_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            DampingPolicy(shard_overhead_seconds=-0.1)

    def test_defaults_are_valid(self):
        policy = DampingPolicy()
        assert policy.amortize_windows == 4.0
        assert policy.cooldown_seconds == 0.0


class TestReshapeDamper:
    def test_negative_saving_is_suppressed(self):
        damper = ReshapeDamper(DampingPolicy(amortize_windows=100.0))
        verdict = damper.judge("merge", 0, 64, saving_seconds=-0.001,
                               transfer_seconds=0.0, now=0.0)
        assert verdict is not None and verdict.reason == "unamortized"
        assert "damped merge [0,64)" in verdict.describe()

    def test_unamortized_transfer_is_suppressed(self):
        damper = ReshapeDamper(DampingPolicy(amortize_windows=2.0))
        verdict = damper.judge("split", 0, 64, saving_seconds=0.001,
                               transfer_seconds=0.01, now=0.0)
        assert verdict is not None and verdict.reason == "unamortized"

    def test_amortized_action_is_allowed(self):
        damper = ReshapeDamper(DampingPolicy(amortize_windows=4.0))
        assert damper.judge("split", 0, 64, saving_seconds=0.003,
                            transfer_seconds=0.01, now=0.0) is None

    def test_zero_saving_zero_transfer_is_allowed(self):
        """A merge of truly cold shards onto a streamed kind moves no bytes
        and saves nothing — it must stay legal or cold fleets never shrink."""
        damper = ReshapeDamper(DampingPolicy())
        assert damper.judge("merge", 0, 64, saving_seconds=0.0,
                            transfer_seconds=0.0, now=0.0) is None

    def test_cooldown_vetoes_overlapping_ranges_only(self):
        damper = ReshapeDamper(DampingPolicy(cooldown_seconds=10.0))
        damper.note_action(now=0.0, start=0, stop=64)
        hit = damper.judge("split", 32, 96, saving_seconds=1.0,
                           transfer_seconds=0.0, now=5.0)
        assert hit is not None and hit.reason == "cooldown"
        # A disjoint range is untouched by the cooldown.
        assert damper.judge("split", 64, 128, saving_seconds=1.0,
                            transfer_seconds=0.0, now=5.0) is None
        # And the range itself clears once the cooldown elapses.
        assert damper.judge("split", 32, 96, saving_seconds=1.0,
                            transfer_seconds=0.0, now=10.0) is None

    def test_zero_cooldown_never_vetoes(self):
        damper = ReshapeDamper(DampingPolicy(cooldown_seconds=0.0))
        damper.note_action(now=0.0, start=0, stop=128)
        assert not damper.in_cooldown(0.0, 0, 128)


class TestCostHelpers:
    def test_best_option_picks_the_cheapest_candidate(self):
        candidates = default_candidates()
        cost, preload = best_option(candidates, 64, 16, heat=0.0)
        # Cold shard: the streamed kind (no standing copy) must win.
        assert preload == 0.0
        assert cost == kind_window_cost(candidates, "im-pir-streamed", 64, 16, 0.0)
        hot_cost, hot_preload = best_option(candidates, 64, 16, heat=1000.0)
        assert hot_preload > 0.0  # hot shard: preloaded kind wins
        assert hot_cost == kind_window_cost(candidates, "im-pir", 64, 16, 1000.0)

    def test_unknown_kind_and_empty_candidates_raise(self):
        with pytest.raises(ConfigurationError):
            kind_window_cost(default_candidates(), "gpu", 64, 16, 0.0)
        with pytest.raises(ConfigurationError):
            best_option([], 64, 16, 0.0)


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=1.0,
                            scale_down_utilization=0.9, scale_up_utilization=0.8)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=1.0, min_replicas=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=1.0,
                            min_replicas=3, max_replicas=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=1.0, sustain_passes=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_heat_per_replica=1.0,
                            evaluation_interval_seconds=0.0)


def make_autoscaler(router, policy=None, heat_indices=(), now=0.0):
    tracker = HeatTracker(router.plan, window_seconds=1.0, decay=0.5)
    if heat_indices:
        tracker.observe_batch(list(heat_indices), now=now)
    policy = policy or AutoscalePolicy(
        target_heat_per_replica=10.0, sustain_passes=2,
        evaluation_interval_seconds=1.0, max_replicas=3,
    )
    return ReplicaAutoscaler(router, tracker, policy), tracker


class TestReplicaAutoscaler:
    def test_initial_count_must_sit_inside_the_bounds(self, database):
        router = make_router(database)
        with pytest.raises(ConfigurationError):
            ReplicaAutoscaler(router, HeatTracker(router.plan), AutoscalePolicy(
                target_heat_per_replica=1.0, min_replicas=2))
        router2 = make_router(database, initial_replicas=3)
        with pytest.raises(ConfigurationError):
            ReplicaAutoscaler(router2, HeatTracker(router2.plan), AutoscalePolicy(
                target_heat_per_replica=1.0, max_replicas=2))

    def test_utilization_is_heat_over_capacity(self, database):
        router = make_router(database)
        autoscaler, tracker = make_autoscaler(router, heat_indices=[0] * 20)
        # 20 observed queries over a capacity of 10 heat x 1 replica.
        assert autoscaler.utilization() == pytest.approx(2.0)

    def test_scale_up_needs_sustained_pressure(self, database):
        router = make_router(database)
        autoscaler, tracker = make_autoscaler(router, heat_indices=[0] * 20)
        assert autoscaler.decide(0.0) is None  # anchors the interval only
        assert autoscaler.decide(0.5) is None  # inside the interval
        assert autoscaler.decide(1.0) is None  # streak 1 of 2
        assert autoscaler.decide(2.0) == "up"  # streak 2 of 2

    def test_dead_zone_resets_the_streaks(self, database):
        router = make_router(database)
        autoscaler, tracker = make_autoscaler(router, heat_indices=[0] * 20)
        autoscaler.decide(0.0)
        assert autoscaler.decide(1.0) is None  # above-band streak 1
        # The next burst rolls the window: the visible estimate decays to 5
        # (util 0.5 — the dead zone between the 0.3 and 0.8 bands), which
        # resets the streak; the burst itself folds in one window later.
        tracker.observe_batch([0] * 40, now=3.0)
        assert autoscaler.decide(3.0) is None  # dead zone: streaks reset
        tracker.observe_batch([], now=4.0)  # folds the burst: heat 22.5
        assert autoscaler.decide(4.0) is None  # streak restarts at 1
        assert autoscaler.decide(5.0) == "up"  # without the reset: at 4.0

    def test_maybe_scale_up_and_down_round_trip(self, database):
        router = make_router(database)
        autoscaler, tracker = make_autoscaler(router, heat_indices=[0] * 20)
        autoscaler.decide(0.0)
        autoscaler.decide(1.0)
        action = autoscaler.maybe_scale(2.0)
        assert action is not None and action.direction == "up"
        assert (action.replicas_before, action.replicas_after) == (1, 2)
        assert router.replica_count == 2
        assert action.transfer_seconds >= 0.0
        assert "scale-up" in action.describe()
        # Retrievals are still exact through the scaled fleet.
        indices = [0, 31, 64, 127]
        assert router.retrieve_batch(indices) == [
            router.replicas[0].database.record(i) for i in indices
        ]
        # Traffic dies; sustained low utilization drains back to one.
        tracker.observe_batch([], now=40.0)  # decay to ~0
        assert autoscaler.decide(40.0) is None  # streak 1 below
        assert autoscaler.maybe_scale(41.0).direction == "down"
        assert router.replica_count == 1
        assert router.retrieve_batch(indices) == [
            router.replicas[0].database.record(i) for i in indices
        ]
        assert [a.direction for a in autoscaler.actions] == ["up", "down"]
        assert autoscaler.last_action.direction == "down"

    def test_bounds_stop_further_actions(self, database):
        router = make_router(database)
        policy = AutoscalePolicy(target_heat_per_replica=1.0, sustain_passes=1,
                                 max_replicas=2)
        autoscaler, tracker = make_autoscaler(router, policy=policy,
                                              heat_indices=[0] * 50)
        autoscaler.decide(0.0)
        assert autoscaler.maybe_scale(1.0).direction == "up"
        assert router.replica_count == 2
        # Still saturated, but the cap holds.
        tracker.observe_batch([0] * 50, now=2.0)
        assert autoscaler.maybe_scale(2.0) is None
        assert router.replica_count == 2

    def test_action_cooldown_blocks_the_next_action(self, database):
        router = make_router(database)
        policy = AutoscalePolicy(target_heat_per_replica=1.0, sustain_passes=1,
                                 max_replicas=4, cooldown_seconds=5.0)
        autoscaler, tracker = make_autoscaler(router, policy=policy,
                                              heat_indices=[0] * 50)
        autoscaler.decide(0.0)
        assert autoscaler.maybe_scale(1.0).direction == "up"
        tracker.observe_batch([0] * 100, now=2.0)
        assert autoscaler.maybe_scale(2.0) is None  # inside the cooldown
        tracker.observe_batch([0] * 400, now=7.0)
        assert autoscaler.maybe_scale(7.0).direction == "up"  # cooldown over
        assert router.replica_count == 3

    def test_unknown_decision_raises(self, database):
        router = make_router(database)
        autoscaler, _ = make_autoscaler(router)
        with pytest.raises(ConfigurationError):
            autoscaler.apply("sideways", now=0.0)


def burning(now=0.0, fast=False):
    return HealthSignal(
        now=now, burning=True, fast_burn=fast,
        active=("lat/fast",) if fast else ("lat/slow",),
    )


class TestSloEscalation:
    def test_fast_burn_scales_up_without_interval_or_streak(self, database):
        router = make_router(database)
        autoscaler, _ = make_autoscaler(router)  # zero heat: bands never fire
        action = autoscaler.maybe_scale(0.0, health=burning(fast=True))
        assert action is not None and action.direction == "up"
        assert action.reason == "slo-escalated"
        assert "slo-escalated" in action.describe()
        assert router.replica_count == 2

    def test_slow_burn_alone_does_not_escalate(self, database):
        router = make_router(database)
        autoscaler, _ = make_autoscaler(router)
        assert autoscaler.maybe_scale(0.0, health=burning(fast=False)) is None
        assert router.replica_count == 1

    def test_escalation_respects_max_replicas(self, database):
        router = make_router(database)
        policy = AutoscalePolicy(target_heat_per_replica=10.0, max_replicas=1)
        autoscaler, _ = make_autoscaler(router, policy=policy)
        assert autoscaler.maybe_scale(0.0, health=burning(fast=True)) is None
        assert router.replica_count == 1

    def test_escalation_respects_the_action_cooldown(self, database):
        router = make_router(database)
        policy = AutoscalePolicy(target_heat_per_replica=10.0, max_replicas=4,
                                 cooldown_seconds=5.0)
        autoscaler, _ = make_autoscaler(router, policy=policy)
        assert autoscaler.maybe_scale(0.0, health=burning(fast=True)).reason == (
            "slo-escalated"
        )
        # An unresolved burn retries every pass but waits out the cooldown.
        assert autoscaler.maybe_scale(1.0, health=burning(fast=True)) is None
        assert autoscaler.maybe_scale(5.0, health=burning(fast=True)) is not None
        assert router.replica_count == 3

    def test_band_scaling_after_escalation_keeps_utilization_reason(self, database):
        router = make_router(database)
        policy = AutoscalePolicy(target_heat_per_replica=1.0, sustain_passes=1,
                                 max_replicas=4)
        autoscaler, tracker = make_autoscaler(router, policy=policy,
                                              heat_indices=[0] * 50)
        autoscaler.maybe_scale(0.0, health=burning(fast=True))
        autoscaler.decide(1.0)  # anchor the evaluation interval
        tracker.observe_batch([0] * 50, now=2.0)
        action = autoscaler.maybe_scale(2.0)
        assert action is not None and action.reason == "utilization"

    def test_any_burn_vetoes_scale_down_but_keeps_the_streak(self, database):
        router = make_router(database, initial_replicas=2)
        autoscaler, _ = make_autoscaler(router)  # zero heat: below the band
        autoscaler.decide(0.0)  # anchors the interval
        assert autoscaler.decide(1.0) is None  # streak 1 of 2
        # Streak 2 of 2, but the budget is burning: capacity is held.
        assert autoscaler.decide(2.0, health=burning(fast=False)) is None
        assert router.replica_count == 2
        # The alert resolves; the preserved streak drains promptly.
        healthy = HealthSignal.healthy(3.0)
        assert autoscaler.maybe_scale(3.0, health=healthy).direction == "down"
        assert router.replica_count == 1


class TestReplicaGroupJournal:
    def test_stage_journals_updates_and_commit_replays_them(self, database):
        router = make_router(database)
        staged = router.stage_replicas()
        # Writes land while the staging is out: journaled *and* applied.
        new_bytes = bytes(16)
        router.apply_updates([(3, new_bytes)])
        members = router.commit_replicas(staged)
        assert router.replica_count == 2
        # The replayed member serves the post-update bytes.
        for member in members:
            assert member.database.record(3) == new_bytes
        assert router.retrieve_batch([3]) == [new_bytes]
        # Journals are cleared once the last stage closed.
        for group in router.replicas:
            assert group.updates_since(0) == []

    def test_commit_after_topology_move_abandons_and_raises(self, database):
        router = make_router(database, heats=[30.0, 0.0])
        staged = router.stage_replicas()
        tracker = HeatTracker(router.plan)
        tracker.observe_batch([0] * 40, now=0.0)
        rebalancer = Rebalancer(router, tracker, split_heat_share=0.5,
                                max_shards=4)
        report = rebalancer.rebalance(now=0.0)
        assert report.splits  # the plan moved underneath the staging
        with pytest.raises(ConfigurationError, match="re-stage"):
            router.commit_replicas(staged)
        assert staged.closed and not staged.committed
        assert router.replica_count == 1
        # A fresh staging against the new plan commits fine.
        router.commit_replicas(router.stage_replicas())
        assert router.replica_count == 2

    def test_abandon_is_idempotent_and_blocks_commit(self, database):
        router = make_router(database)
        staged = router.stage_replicas()
        router.abandon_replicas(staged)
        router.abandon_replicas(staged)  # second call is a no-op
        with pytest.raises(ConfigurationError):
            router.commit_replicas(staged)
        assert router.replica_count == 1

    def test_drain_refuses_the_last_member(self, database):
        router = make_router(database)
        with pytest.raises(ConfigurationError):
            router.drain_replica()

    def test_add_and_drain_round_trip_with_updates(self, database):
        router = make_router(database)
        router.add_replica()
        assert router.replica_count == 2
        new_bytes = bytes(range(16))
        router.apply_updates([(7, new_bytes)])
        # Both members of each group saw the update.
        for group in router.replicas:
            for member in group.members:
                assert member.database.record(7) == new_bytes
        drained = router.drain_replica()
        assert router.replica_count == 1
        assert len(drained) == 2  # one per trust domain
        assert router.retrieve_batch([7]) == [new_bytes]

    def test_reconfiguration_metric_counts_elastic_actions(self, database):
        router = make_router(database)
        before = router.metrics.reconfigurations
        router.add_replica()
        router.drain_replica()
        assert router.metrics.reconfigurations == before + 2


class TestFlapResistance:
    """The satellite property: borderline heat must not flap the topology."""

    def oscillate(self, database, damping):
        router = make_router(database, num_shards=2)
        tracker = HeatTracker(router.plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(
            router, tracker, interval_seconds=1.0,
            split_heat_share=0.5, merge_heat_floor=8.0,
            min_shards=2, max_shards=8, damping=damping,
        )
        now = 0.0
        for _ in range(4):
            # Hot burst spread across the first shard (so a split's halves
            # would share the heat evenly), then silence long enough for
            # decay to drag the heat back under the merge floor.
            tracker.observe_batch([i % 64 for i in range(24)], now=now)
            rebalancer.rebalance(now=now)
            now += 4.0
            tracker.observe_batch([], now=now)
            rebalancer.rebalance(now=now)
            now += 4.0
        return rebalancer

    def test_undamped_fleet_flaps(self, database):
        rebalancer = self.oscillate(database, damping=None)
        assert rebalancer.total_splits + rebalancer.total_merges > 0
        assert rebalancer.total_suppressed == 0

    def test_damped_fleet_holds_the_topology(self, database):
        damping = DampingPolicy(amortize_windows=0.5, cooldown_seconds=16.0,
                                shard_overhead_seconds=1e-4)
        rebalancer = self.oscillate(database, damping=damping)
        assert rebalancer.total_splits + rebalancer.total_merges == 0
        assert rebalancer.total_suppressed > 0
        # Suppressions surface on the reports, with their economics.
        suppressed = [v for r in rebalancer.reports for v in r.suppressed]
        assert any(v.reason in ("unamortized", "cooldown") for v in suppressed)
        assert any("damped" in line
                   for r in rebalancer.reports if r.suppressed
                   for line in [r.describe()])

    def test_damped_and_undamped_fleets_serve_identical_records(self, database):
        damped = self.oscillate(
            database, DampingPolicy(amortize_windows=0.5, cooldown_seconds=16.0,
                                shard_overhead_seconds=1e-4)
        )
        undamped = self.oscillate(database, damping=None)
        indices = list(range(0, 128, 11))
        expected = [database.record(i) for i in indices]
        assert damped.router.retrieve_batch(indices) == expected
        assert undamped.router.retrieve_batch(indices) == expected


class SimClock:
    """A settable clock the driver polls instead of the event loop's."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAsyncControlDriver:
    def test_clock_is_mandatory_and_interval_positive(self, database):
        router = make_router(database)
        with pytest.raises(ConfigurationError):
            AsyncControlDriver(object(), object(), 1.0, clock=None)
        with pytest.raises(ConfigurationError):
            AsyncControlDriver(object(), object(), 0.0, clock=lambda: 0.0)

    def build_controlled(self, database, sustain=1, observer_driven=False):
        client = make_client(database)
        plan = ShardPlan.uniform(database.num_records, 2)
        router, plane = controlled_fleet(
            client, database, plan, heats=[0.0, 0.0],
            window_seconds=1.0, decay=0.5,
            rebalance_interval_seconds=1.0,
            autoscale=AutoscalePolicy(
                target_heat_per_replica=5.0, sustain_passes=sustain,
                evaluation_interval_seconds=1.0, max_replicas=2,
            ),
            observer_driven=observer_driven,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=0.02),
        )
        frontend = AsyncPIRFrontend(
            client, router.replicas,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=0.02),
            observers=[plane],
        )
        return router, plane, frontend

    def test_run_once_scales_up_through_the_gate(self, database):
        async def run():
            router, plane, frontend = self.build_controlled(database)
            driver = AsyncControlDriver(
                plane, frontend, interval_seconds=1.0, clock=lambda: 0.0
            )
            plane.tracker.observe_batch([0] * 40, now=0.0)
            await driver.run_once(0.0)  # anchors the autoscaler interval
            report, action = await driver.run_once(1.0)
            records = await asyncio.gather(*(frontend.submit(i) for i in (1, 127)))
            return router, driver, action, records

        router, driver, action, records = asyncio.run(run())
        assert action is not None and action.direction == "up"
        assert router.replica_count == 2
        assert driver.passes == 2
        assert records == [database.record(1), database.record(127)]

    def test_managed_driver_scales_under_live_traffic(self, database):
        async def run():
            router, plane, frontend = self.build_controlled(database)
            clock = SimClock()

            async def sleep(seconds):
                clock.now += seconds
                await asyncio.sleep(0)

            driver = plane.start_driver(
                frontend, interval_seconds=1.0, clock=clock, sleep=sleep
            )
            assert plane.observer_driven is False
            assert driver.running
            with pytest.raises(ConfigurationError):
                driver.start()  # a second start would race the gate
            records = []
            for _ in range(12):
                batch = await asyncio.gather(
                    *(frontend.submit(i) for i in (0, 1, 2, 3))
                )
                records.extend(batch)
                await asyncio.sleep(0.01)
            await plane.stop_driver()
            return router, plane, driver, records

        router, plane, driver, records = asyncio.run(run())
        assert not driver.running
        assert driver.passes > 0
        assert not driver.errors
        assert router.replica_count == 2  # sustained pressure scaled it up
        assert plane.autoscaler.last_action.direction == "up"
        expected = [database.record(i) for i in (0, 1, 2, 3)] * 12
        assert records == expected

    def test_driver_survives_failing_passes(self, database):
        async def run():
            router, plane, frontend = self.build_controlled(database)

            class Boom(Exception):
                pass

            def explode(now):
                raise Boom("control pass failed")

            plane.rebalancer.maybe_rebalance = explode
            clock = SimClock()

            async def sleep(seconds):
                clock.now += seconds
                await asyncio.sleep(0)

            driver = plane.start_driver(
                frontend, interval_seconds=1.0, clock=clock, sleep=sleep
            )
            for _ in range(5):
                await asyncio.sleep(0.005)
            record = await frontend.submit(9)
            await plane.stop_driver()
            return driver, record

        driver, record = asyncio.run(run())
        assert driver.errors  # the failures were kept, not fatal
        assert record == database.record(9)  # and the data plane kept serving

    def test_describe_reports_the_autoscaler(self, database):
        router, plane, frontend = self.build_controlled(
            database, observer_driven=True
        )
        plane.tracker.observe_batch([0] * 40, now=0.0)
        plane.control_pass(0.0)
        plane.control_pass(1.0)
        lines = "\n".join(plane.describe())
        assert "autoscaler: 2 live replica(s)" in lines
        assert "last action: scale-up" in lines


class TestElasticCloseHygiene:
    """Retired replicas must release their scan resources: both the drain
    path and an abandoned staging close every member they retire."""

    @staticmethod
    def _record_close(member, closed):
        original = member.backend.close

        def recording_close(member=member, original=original):
            closed.append(member)
            original()

        member.backend.close = recording_close

    def test_drain_closes_the_retired_members(self, database):
        router = make_router(database)
        router.add_replica()
        newest = [group.members[-1] for group in router.replicas]
        closed = []
        for member in newest:
            self._record_close(member, closed)
        drained = router.drain_replica()
        assert drained == newest
        assert closed == newest

    def test_abandon_closes_the_staged_members(self, database):
        router = make_router(database)
        staged = router.stage_replicas()
        closed = []
        for member in staged.members:
            self._record_close(member, closed)
        router.abandon_replicas(staged)
        assert closed == list(staged.members)
        # The surviving replica is untouched and still serves.
        assert router.replica_count == 1
        record = database.record(5)
        assert router.retrieve_batch([5]) == [record]
