"""CLI for regenerating figures."""

import pytest

from repro.bench.cli import available_targets, main, run_target


class TestRunTarget:
    def test_all_targets_produce_text(self):
        for name in available_targets():
            text = run_target(name)
            assert isinstance(text, str) and len(text) > 50

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_target("fig99")

    def test_fig9_mentions_speedup(self):
        assert "speedup" in run_target("fig9")

    def test_table1_mentions_paper_row(self):
        assert "paper" in run_target("table1")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "all" in out

    def test_single_target(self, capsys):
        assert main(["fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_unknown_target_exit_code(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_all(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 3", "Figure 9", "Table 1", "Figure 11", "Figure 12"):
            assert marker in out

    def test_async_smoke(self, capsys):
        assert main(["smoke", "--async"]) == 0
        out = capsys.readouterr().out
        assert "Async frontend smoke" in out
        assert "max-wait timer" in out
        assert "overlapped" in out

    def test_async_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--async"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_rebalance_smoke(self, capsys):
        assert main(["smoke", "--rebalance"]) == 0
        out = capsys.readouterr().out
        assert "Rebalance smoke" in out
        assert "migration" in out
        assert "cache hit rate" in out
        assert "bit-identical" in out

    def test_rebalance_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--rebalance"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_async_and_rebalance_are_exclusive(self, capsys):
        assert main(["smoke", "--async", "--rebalance"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_resplit_smoke(self, capsys):
        assert main(["smoke", "--resplit"]) == 0
        out = capsys.readouterr().out
        assert "Resplit smoke" in out
        assert "split" in out
        assert "merge" in out
        assert "heat remapped" in out
        assert "bit-identical" in out

    def test_resplit_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--resplit"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_resplit_and_rebalance_are_exclusive(self, capsys):
        assert main(["smoke", "--resplit", "--rebalance"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_batched_smoke(self, capsys):
        assert main(["smoke", "--batched"]) == 0
        out = capsys.readouterr().out
        assert "Batched smoke" in out
        assert "bit-identically" in out
        assert "reference" in out and "sharded" in out

    def test_batched_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--batched"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_batched_and_async_are_exclusive(self, capsys):
        assert main(["smoke", "--batched", "--async"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_traced_smoke(self, capsys):
        assert main(["smoke", "--traced"]) == 0
        out = capsys.readouterr().out
        assert "Traced smoke" in out
        assert "bit-identical" in out
        assert "float-exact" in out
        assert "rebalance passes observed" in out

    def test_traced_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--traced"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_traced_and_batched_are_exclusive(self, capsys):
        assert main(["smoke", "--traced", "--batched"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_autoscale_smoke(self, capsys):
        assert main(["smoke", "--autoscale"]) == 0
        out = capsys.readouterr().out
        assert "Autoscale smoke" in out
        assert "bit-identical" in out
        assert "scale-up" in out and "scale-down" in out
        assert "damped reshape" in out

    def test_autoscale_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--autoscale"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_autoscale_and_resplit_are_exclusive(self, capsys):
        assert main(["smoke", "--autoscale", "--resplit"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_slo_smoke(self, capsys):
        assert main(["smoke", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO smoke" in out
        assert "bit-identical" in out
        assert "fast-burn alert fired" in out and "resolved" in out
        assert "escalated scale-up" in out
        assert "incident bundle" in out and "deterministic" in out

    def test_slo_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--slo"]) == 2
        assert "smoke" in capsys.readouterr().err

    def test_slo_and_autoscale_are_exclusive(self, capsys):
        assert main(["smoke", "--slo", "--autoscale"]) == 2
        assert "one of" in capsys.readouterr().err

    def test_report_mentions_latency_quantiles(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "latency quantiles" in out
        assert "p50" in out and "p99" in out

    def test_report_target(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Observability report" in out
        assert "== events ==" in out
        assert "== metrics ==" in out
        assert "repro_flushes_total" in out
        assert "slowest traces" in out

    def test_report_listed(self, capsys):
        assert main(["list"]) == 0
        assert "report" in capsys.readouterr().out

    def test_bench_quick(self, capsys):
        assert main(["bench", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Batched scan benchmark (quick mode)" in out
        assert "speedup" in out

    def test_quick_flag_rejected_for_other_targets(self, capsys):
        assert main(["fig9", "--quick"]) == 2
        assert "bench" in capsys.readouterr().err

    def test_bench_listed(self, capsys):
        assert main(["list"]) == 0
        assert "bench" in capsys.readouterr().out
