"""Deterministic randomness helpers."""

import numpy as np
import pytest

from repro.common.rng import derive_seed, make_rng, random_bit_vector, random_bytes


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng().integers(0, 1 << 30, size=8)
        b = make_rng().integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_explicit_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=8)
        b = make_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_same_seed_same_stream(self):
        assert np.array_equal(
            make_rng(77).integers(0, 256, size=32), make_rng(77).integers(0, 256, size=32)
        )


class TestRandomBytes:
    def test_length(self):
        assert len(random_bytes(33)) == 33

    def test_zero_length(self):
        assert random_bytes(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_bytes(-1)

    def test_uses_provided_rng(self):
        assert random_bytes(16, make_rng(5)) == random_bytes(16, make_rng(5))


class TestRandomBitVector:
    def test_values_are_bits(self):
        bits = random_bit_vector(1000, make_rng(1))
        assert set(np.unique(bits)).issubset({0, 1})

    def test_roughly_balanced(self):
        bits = random_bit_vector(4096, make_rng(2))
        assert 1500 < int(bits.sum()) < 2600

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_bit_vector(-5)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(123, 4, 5) == derive_seed(123, 4, 5)

    def test_label_order_matters(self):
        assert derive_seed(123, 4, 5) != derive_seed(123, 5, 4)

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, 9) != derive_seed(2, 9)

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(2**63, 2**62) < 2**64
