"""UPMEM configuration objects and derived quantities."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, KIB, MIB
from repro.pim.config import (
    DPUS_PER_MODULE,
    UPMEM_PAPER_CONFIG,
    DPUConfig,
    HostConfig,
    PIMConfig,
    TransferConfig,
    scaled_down_config,
)


class TestDPUConfig:
    def test_paper_defaults(self):
        dpu = DPUConfig()
        assert dpu.mram_bytes == 64 * MIB
        assert dpu.wram_bytes == 64 * KIB
        assert dpu.iram_bytes == 24 * KIB
        assert dpu.frequency_hz == pytest.approx(350e6)
        assert dpu.tasklets == 16

    def test_pipeline_efficiency_saturates_at_eleven_tasklets(self):
        full = DPUConfig(tasklets=16).pipeline_efficiency
        partial = DPUConfig(tasklets=4).pipeline_efficiency
        assert full == pytest.approx(1.0)
        assert partial == pytest.approx(4 / 11)

    def test_rejects_too_many_tasklets(self):
        with pytest.raises(ConfigurationError):
            DPUConfig(tasklets=25)

    def test_rejects_zero_memory(self):
        with pytest.raises(ConfigurationError):
            DPUConfig(mram_bytes=0)


class TestHostConfig:
    def test_thread_count(self):
        assert HostConfig().total_threads == 2 * 8 * 2

    def test_aggregate_aes_rate_scales_with_threads(self):
        host = HostConfig()
        assert host.aggregate_aes_blocks_per_second > host.aes_blocks_per_second_per_thread

    def test_rejects_bad_topology(self):
        with pytest.raises(ConfigurationError):
            HostConfig(sockets=0)


class TestTransferConfig:
    def test_launch_overhead_scales_with_dpus(self):
        transfer = TransferConfig()
        assert transfer.launch_overhead_s(2048) > transfer.launch_overhead_s(256)
        assert transfer.launch_overhead_s(1) >= transfer.launch_base_s

    def test_launch_overhead_rejects_zero_dpus(self):
        with pytest.raises(ConfigurationError):
            TransferConfig().launch_overhead_s(0)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TransferConfig(host_to_dpu_bandwidth=0)


class TestPIMConfig:
    def test_paper_platform(self):
        config = UPMEM_PAPER_CONFIG
        assert config.num_dpus == 2048
        assert config.available_dpus == 2560
        assert config.total_mram_bytes == 2048 * 64 * MIB
        # The paper quotes ~1.79 TB/s aggregate bandwidth for 2,560 DPUs at
        # 700 MB/s; for the 2,048 DPUs used in experiments this is ~1.4 TB/s.
        assert config.aggregate_mram_bandwidth == pytest.approx(2048 * 700e6)

    def test_modules_for_available_dpus(self):
        assert UPMEM_PAPER_CONFIG.num_modules == -(-2560 // DPUS_PER_MODULE)

    def test_cannot_request_more_than_available(self):
        with pytest.raises(ConfigurationError):
            PIMConfig(num_dpus=3000, available_dpus=2560)

    def test_with_dpus_copy(self):
        smaller = UPMEM_PAPER_CONFIG.with_dpus(512)
        assert smaller.num_dpus == 512
        assert smaller.dpu == UPMEM_PAPER_CONFIG.dpu

    def test_with_tasklets_copy(self):
        changed = UPMEM_PAPER_CONFIG.with_tasklets(8)
        assert changed.dpu.tasklets == 8
        assert changed.num_dpus == UPMEM_PAPER_CONFIG.num_dpus

    def test_scaled_down_config(self):
        small = scaled_down_config(num_dpus=8, tasklets=4)
        assert small.num_dpus == 8
        assert small.dpu.tasklets == 4
        assert small.dpu.mram_bytes == 64 * MIB  # hardware parameters unchanged

    def test_total_mram_capacity_matches_paper_figure(self):
        """20 modules (2,560 DPUs) hold 160 GB of MRAM."""
        full = PIMConfig(num_dpus=2560)
        assert full.total_mram_bytes == 160 * GIB
