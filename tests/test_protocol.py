"""End-to-end protocol driver (integration tests of the reference path)."""

import pytest

from repro.common.errors import ProtocolError
from repro.pir.database import Database
from repro.pir.protocol import MultiServerPIRProtocol


class TestDPFProtocol:
    def test_every_record_retrievable(self):
        db = Database.random(128, 16, seed=4)
        protocol = MultiServerPIRProtocol(db, seed=1)
        assert protocol.verify_against_database(range(128))

    def test_trace_reports_communication(self, small_db):
        protocol = MultiServerPIRProtocol(small_db, seed=2)
        trace = protocol.retrieve_with_trace(100)
        assert trace.record == small_db.record(100)
        assert trace.upload_bytes > 0
        assert trace.download_bytes == 2 * small_db.record_size
        assert len(trace.answers) == 2

    def test_retrieve_batch(self, small_db):
        protocol = MultiServerPIRProtocol(small_db, seed=3)
        indices = [0, 5, 1023]
        records = protocol.retrieve_batch(indices)
        assert records == [small_db.record(i) for i in indices]

    def test_aes_prg_backend(self):
        db = Database.random(32, 8, seed=6)
        protocol = MultiServerPIRProtocol(db, prg_backend="aes", seed=1)
        assert protocol.retrieve(17) == db.record(17)

    def test_non_power_of_two_database(self):
        db = Database.random(1000, 24, seed=8)
        protocol = MultiServerPIRProtocol(db, seed=5)
        for index in (0, 999, 511, 512):
            assert protocol.retrieve(index) == db.record(index)

    def test_single_record_database(self):
        db = Database.random(1, 8, seed=9)
        protocol = MultiServerPIRProtocol(db, seed=1)
        assert protocol.retrieve(0) == db.record(0)


class TestNaiveProtocol:
    @pytest.mark.parametrize("num_servers", [2, 3, 4])
    def test_multi_server_naive(self, num_servers):
        db = Database.random(200, 16, seed=11)
        protocol = MultiServerPIRProtocol(db, num_servers=num_servers, scheme="naive", seed=2)
        assert protocol.verify_against_database([0, 42, 199])


class TestValidation:
    def test_rejects_one_server(self, tiny_db):
        with pytest.raises(ProtocolError):
            MultiServerPIRProtocol(tiny_db, num_servers=1)

    def test_rejects_unknown_scheme(self, tiny_db):
        with pytest.raises(ProtocolError):
            MultiServerPIRProtocol(tiny_db, scheme="onion")
