"""Smoke tests: every shipped example runs end to end and verifies itself.

The examples contain their own assertions (retrieved records are checked
against the database, audit digests against the log, and so on), so simply
executing ``main()`` is a meaningful integration test; stdout is captured to
keep the test output clean.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "unified_backends",
    "sharded_fleet",
    "async_frontend",
    "control_plane",
    "topology_reshape",
    "observability",
    "autoscaler",
    "slo_alerting",
    "certificate_transparency_audit",
    "credential_checking",
    "oversized_database_and_updates",
    "reproduce_paper_figures",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_main_succeeds(self, name, capsys):
        module = _load_example(name)
        module.main()
        output = capsys.readouterr().out
        assert len(output) > 100

    def test_quickstart_reports_verification(self, capsys):
        _load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "verified" in out
        assert "phase breakdown" in out

    def test_ct_audit_verifies_every_lookup(self, capsys):
        _load_example("certificate_transparency_audit").main()
        out = capsys.readouterr().out
        assert "12/12 audits verified" in out

    def test_credential_checking_all_verdicts_correct(self, capsys):
        _load_example("credential_checking").main()
        out = capsys.readouterr().out
        assert "10/10 verdicts correct" in out

    def test_async_frontend_example_proves_timer_and_overlap(self, capsys):
        _load_example("async_frontend").main()
        out = capsys.readouterr().out
        assert "max-wait timer" in out
        assert "overlapped" in out
        assert "bit-identical" in out

    def test_autoscaler_example_shows_the_closed_loop(self, capsys):
        _load_example("autoscaler").main()
        out = capsys.readouterr().out
        assert "suppressed (cooldown)" in out
        assert "replica add" in out and "replica drain" in out
        assert "scale-up" in out and "scale-down" in out
        assert "bit-identical to the static fleet" in out

    def test_slo_example_shows_the_alert_lifecycle(self, capsys):
        _load_example("slo_alerting").main()
        out = capsys.readouterr().out
        assert "[fast]" in out and "resolved@" in out
        assert "slo-escalated" in out
        assert "incident bundle" in out
        assert "bit-identical to an uninstrumented static fleet" in out

    def test_figures_example_prints_every_figure(self, capsys):
        _load_example("reproduce_paper_figures").main()
        out = capsys.readouterr().out
        for marker in ("FIGURE 3", "FIGURE 9", "TABLE 1", "FIGURE 11", "FIGURE 12"):
            assert marker in out
