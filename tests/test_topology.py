"""Versioned shard topology: split/merge transforms, live reshape, heat remap.

The topology lifecycle cut through every layer: pure plan transforms
(``split_shard``/``merge_shards`` + :class:`TopologyChange`), the backend's
atomic ``apply_topology`` swap, the tracker's window remap (heat survives a
reshape, never resets), the rebalancer's plan-shape policy, and the
frontends' reconfigure gates — with retrievals bit-identical to a static
fleet throughout, which is the property everything else exists to protect.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.control.plane import controlled_fleet
from repro.control.rebalancer import Rebalancer
from repro.control.telemetry import HeatTracker
from repro.dpf.prf import make_prg
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.shard.backend import ShardedBackend, ShardedServer, bare_backend_factory
from repro.shard.fleet import FleetRouter, heats_from_trace, plan_placements
from repro.shard.plan import ShardPlan, TopologyChange
from repro.workloads.traces import zipf_trace


def make_client(database, seed=91):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


class TestPlanTransforms:
    def test_split_produces_versioned_block_aligned_plan(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        change = plan.split_shard(0, 16)
        assert change.old_plan is plan
        assert change.new_plan.version == plan.version + 1
        assert [(s.start, s.stop) for s in change.new_plan.shards] == [
            (0, 16), (16, 32), (32, 64)
        ]
        # Pure: the old plan is untouched, indices re-derived contiguously.
        assert [(s.start, s.stop) for s in plan.shards] == [(0, 32), (32, 64)]
        assert [s.index for s in change.new_plan.shards] == [0, 1, 2]

    def test_split_rejects_boundary_cuts_as_noops(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        for at in (0, 32):  # == start and == stop of shard 0
            with pytest.raises(ConfigurationError, match="no-op"):
                plan.split_shard(0, at)

    def test_split_rejects_unaligned_and_out_of_range(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        with pytest.raises(ConfigurationError, match="block boundary"):
            plan.split_shard(0, 12)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.split_shard(5, 8)

    def test_merge_adjacent_shards(self):
        plan = ShardPlan.uniform(64, 4, block_records=8)
        change = plan.merge_shards(1, 2)
        assert change.new_plan.num_shards == 3
        assert (change.new_plan.shards[1].start, change.new_plan.shards[1].stop) == (
            16, 48,
        )
        assert change.new_plan.version == plan.version + 1

    def test_merge_rejects_non_adjacent_and_out_of_range(self):
        plan = ShardPlan.uniform(64, 4, block_records=8)
        with pytest.raises(ConfigurationError, match="adjacent"):
            plan.merge_shards(0, 2)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.merge_shards(3, 4)

    def test_merge_empty_trailing_shard(self):
        # More shards than records: trailing shards are empty (stop, stop).
        plan = ShardPlan.uniform(10, 5, block_records=8)
        assert plan.shards[-1].is_empty
        change = plan.merge_shards(3, 4)
        assert change.new_plan.num_shards == 4
        assert change.new_plan.shards[-1].is_empty  # still an empty tail
        # Folding an empty tail into a non-empty neighbour works too.
        change2 = change.new_plan.merge_shards(1, 2)
        assert change2.new_plan.shards[1].num_records == 2

    def test_split_then_merge_round_trips_boundaries(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        split = plan.split_shard(1, 48)
        merged = split.new_plan.merge_shards(1, 2)
        assert merged.new_plan.same_boundaries(plan)
        assert merged.new_plan.version == plan.version + 2  # versions never rewind


class TestTopologyChange:
    def test_split_mapping(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        change = plan.split_shard(0, 16)
        assert change.new_for_old == ((0, 1), (2,))
        assert change.old_for_new == ((0,), (0,), (1,))
        assert change.unchanged_pairs() == ((1, 2),)
        assert change.changed_new_indices() == (0, 1)

    def test_merge_mapping(self):
        plan = ShardPlan.uniform(64, 4, block_records=8)
        change = plan.merge_shards(1, 2)
        assert change.new_for_old == ((0,), (1,), (1,), (2,))
        assert change.old_for_new == ((0,), (1, 2), (3,))
        assert dict(change.unchanged_pairs()) == {0: 0, 3: 2}
        assert change.changed_new_indices() == (1,)

    def test_compose_chains_transforms(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        first = plan.split_shard(0, 16)
        second = first.new_plan.merge_shards(1, 2)
        overall = first.compose(second)
        assert overall.old_plan is plan
        assert overall.new_plan is second.new_plan
        assert overall.new_plan.version == plan.version + 2
        # The fused mapping is re-derived from the tilings directly:
        # [0,16) came from old shard 0, [16,64) from old shards 0 and 1.
        assert overall.old_for_new == ((0,), (0, 1))

    def test_compose_rejects_out_of_order_chaining(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        first = plan.split_shard(0, 16)
        unrelated = plan.split_shard(1, 48)
        with pytest.raises(ConfigurationError, match="compose"):
            first.compose(unrelated)

    def test_rejects_incompatible_plans(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        other_size = replace(ShardPlan.uniform(32, 2, block_records=8), version=1)
        with pytest.raises(ConfigurationError, match="record count"):
            TopologyChange(old_plan=plan, new_plan=other_size)
        stale = ShardPlan.uniform(64, 4, block_records=8)  # same version
        with pytest.raises(ConfigurationError, match="versions increase"):
            TopologyChange(old_plan=plan, new_plan=stale)


class TestBackendApplyTopology:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(64, 8, seed=92)

    def make_server(self, database, plan, server_id=0):
        return ShardedServer(
            database,
            server_id=server_id,
            plan=plan,
            child_factory=bare_backend_factory("reference"),
        )

    def frontend_records(self, database, plan, indices, reshape=None, seed=93):
        """Retrieve ``indices`` through a 2-replica sharded frontend,
        optionally reshaping both replicas (via ``reshape(server)``) first."""
        replicas = [self.make_server(database, plan, server_id=i) for i in (0, 1)]
        if reshape is not None:
            for replica in replicas:
                reshape(replica)
        frontend = PIRFrontend(
            make_client(database, seed=seed),
            replicas,
            policy=BatchingPolicy(max_batch_size=len(indices)),
        )
        return frontend.retrieve_batch(indices)

    def test_split_and_merge_preserve_retrievals_bit_for_bit(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        indices = [0, 15, 16, 31, 32, 63]
        expected = [database.record(i) for i in indices]
        assert self.frontend_records(database, plan, indices) == expected

        def split(server):
            server.apply_topology(server.plan.split_shard(0, 16))

        def merge(server):
            server.apply_topology(server.plan.merge_shards(0, 1))

        assert self.frontend_records(database, plan, indices, reshape=split) == expected
        assert self.frontend_records(database, plan, indices, reshape=merge) == expected

    def test_unchanged_children_are_reused(self, database):
        plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
        server = self.make_server(database, plan)
        children_before = {
            shard.index: child for shard, child in server.backend.members
        }
        server.apply_topology(server.plan.split_shard(0, 8))
        children_after = dict(
            (shard.index, child) for shard, child in server.backend.members
        )
        # Shards 1..3 survived as new indices 2..4 with the same child object.
        for old_index, new_index in ((1, 2), (2, 3), (3, 4)):
            assert children_after[new_index] is children_before[old_index]
        # The split halves got fresh children.
        assert children_after[0] is not children_before[0]
        assert children_after[1] is not children_before[0]

    def test_members_is_an_immutable_snapshot(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        server = self.make_server(database, plan)
        snapshot = server.backend.members
        assert isinstance(snapshot, tuple)
        with pytest.raises(TypeError):
            snapshot[0] = None
        # The snapshot does not follow a reshape; a re-read does.
        server.apply_topology(server.plan.split_shard(0, 16))
        assert len(snapshot) == 2
        assert len(server.backend.members) == 3

    def test_stale_change_rejected(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        server = self.make_server(database, plan)
        stale = plan.split_shard(0, 16)
        server.apply_topology(stale)
        # Replaying the same change (or any change built on v0) must fail:
        # the backend now runs v1.
        with pytest.raises(ConfigurationError, match="version"):
            server.apply_topology(stale)

    def test_unprepared_backend_rejects_topology(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        backend = ShardedBackend(bare_backend_factory("reference"), plan=plan)
        with pytest.raises(ProtocolError):
            backend.apply_topology(plan.split_shard(0, 16))

    def test_apply_updates_routes_through_the_new_plan(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        server = self.make_server(database, plan)
        server.apply_topology(server.plan.split_shard(0, 16))
        new_record = bytes(range(8))
        server.apply_updates([(3, new_record)])
        client = make_client(database)
        queries = client.query(3)
        answers = [server.answer(q).answer for q in queries if q.server_id == 0]
        assert server.plan.shard_for_record(3).stop == 16  # owned by a split half
        assert server.database.record(3) == new_record
        assert len(answers) == 1

    def test_reshape_between_mid_window_updates(self, database):
        """Split/merge interleaved with apply_updates: updates before the
        reshape land in the children the reshape re-slices; updates after
        route through the new plan; retrievals stay exact throughout."""
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        before = bytes(8)
        middle = bytes([1] * 8)
        after = bytes([2] * 8)

        def reshaped_records(indices):
            replicas = [self.make_server(database, plan, server_id=i) for i in (0, 1)]
            for replica in replicas:
                replica.apply_updates([(0, before), (40, before)])
                replica.apply_topology(replica.plan.split_shard(0, 16))
                replica.apply_updates([(0, middle)])
                replica.apply_topology(replica.plan.merge_shards(1, 2))
                replica.apply_updates([(40, after)])
            frontend = PIRFrontend(
                make_client(database, seed=94),
                replicas,
                policy=BatchingPolicy(max_batch_size=len(indices)),
            )
            return frontend.retrieve_batch(indices)

        assert reshaped_records([0, 40, 63]) == [middle, after, database.record(63)]

    def test_reprepare_keeps_the_reshaped_topology(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        server = self.make_server(database, plan)
        server.apply_topology(server.plan.split_shard(0, 16))
        reshaped = server.plan
        server.backend.prepare(database)
        assert server.plan is reshaped  # not resurrected to the seed plan


class TestHeatRemap:
    def test_split_divides_by_measured_record_rates(self):
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        tracker.observe_batch([2] * 30 + [50] * 10, now=0.0)
        tracker.observe_batch([2] * 30 + [50] * 10, now=1.0)  # roll a window
        total_before = sum(tracker.heats())
        change = plan.split_shard(0, 32)
        tracker.remap(change)
        heats = tracker.heats()
        assert heats == pytest.approx([0.75 * total_before, 0.25 * total_before])
        assert tracker.plan is change.new_plan
        assert sum(heats) == pytest.approx(total_before)  # conservation

    def test_merge_sums_heat(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        tracker.observe_batch([0] * 6 + [40] * 4, now=0.0)
        tracker.remap(plan.merge_shards(0, 1))
        assert tracker.heats() == [10.0]

    def test_live_window_and_smoothed_estimate_both_survive(self):
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        tracker.observe_batch([0] * 8, now=0.0)
        tracker.observe_batch([0] * 4, now=1.0)  # rolls: smoothed=8, window=4
        tracker.remap(plan.split_shard(0, 32))
        assert tracker.heats()[0] == pytest.approx(8.0)  # smoothed carried
        tracker.advance(2.0)  # roll the live window into the estimate
        assert tracker.heats()[0] == pytest.approx(0.5 * 8 + 0.5 * 4)

    def test_cold_shard_splits_proportionally_to_records(self):
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        tracker.remap(plan.split_shard(0, 16))
        assert tracker.heats() == [0.0, 0.0]  # nothing to divide, no crash

    def test_remap_rejects_stale_plan(self):
        plan = ShardPlan.uniform(64, 2, block_records=8)
        tracker = HeatTracker(plan)
        change = plan.split_shard(0, 16)
        tracker.remap(change)
        with pytest.raises(ConfigurationError, match="version"):
            tracker.remap(change)  # tracker moved on to v1

    def test_split_point_is_the_block_aligned_heat_median(self):
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan)
        tracker.observe_batch([4] * 10 + [20] * 10 + [60] * 20, now=0.0)
        # Cumulative heat reaches exactly half (20 of 40) left of 24; among
        # the tied boundaries 24..56 the smallest equal-load cut wins.
        assert tracker.split_point(0) == 24

    def test_split_point_tie_isolates_the_hot_block(self):
        # All heat inside one block: no cut divides it, so the tie must
        # break toward the cut isolating the hot block, not a cold sliver.
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan)
        tracker.observe_batch([58] * 40, now=0.0)
        assert tracker.split_point(0) == 56

    def test_split_point_without_heat_falls_back_to_midpoint(self):
        plan = ShardPlan.uniform(64, 1, block_records=8)
        tracker = HeatTracker(plan)
        assert tracker.split_point(0) == 32

    def test_split_point_single_block_shard_returns_none(self):
        plan = ShardPlan.uniform(16, 2, block_records=8)
        tracker = HeatTracker(plan)
        tracker.observe_batch([0] * 5, now=0.0)
        assert tracker.split_point(0) is None


class TestPlanShapePolicy:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(128, 8, seed=95)

    def make_router(self, database, plan, heats, seed=96, **kwargs):
        return FleetRouter(
            make_client(database, seed=seed),
            database,
            plan,
            heats,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
            **kwargs,
        )

    def test_hot_shard_splits_at_its_heat_median(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        router = self.make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(
            router, tracker, split_heat_share=0.5, max_shards=4
        )
        tracker.observe_batch([0] * 20 + [56] * 20, now=0.0)
        report = rebalancer.rebalance(now=0.0)
        assert len(report.splits) >= 1
        assert report.splits[0].shard.index == 0
        assert report.topology is not None
        assert router.plan.version > 0
        assert router.plan is tracker.plan
        assert sum(report.heats) == pytest.approx(40.0)  # remapped, not reset
        # The reshaped fleet still serves exact records on both sides.
        indices = [0, 56, 127]
        assert router.retrieve_batch(indices) == [database.record(i) for i in indices]

    def test_cold_adjacent_shards_merge_down_to_min(self, database):
        plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
        router = self.make_router(database, plan, heats=[5.0, 0.0, 0.0, 0.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(
            router, tracker, merge_heat_floor=0.5, min_shards=2
        )
        tracker.observe_batch([0] * 10, now=0.0)  # shards 1..3 stay cold
        report = rebalancer.rebalance(now=0.0)
        assert len(report.merges) == 2  # 4 -> 2, bounded by min_shards
        assert router.plan.num_shards == 2
        indices = [0, 50, 100, 127]
        assert router.retrieve_batch(indices) == [database.record(i) for i in indices]

    def test_bounds_respected(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        router = self.make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(
            router, tracker, split_heat_share=0.2, max_shards=3
        )
        # Heat spread over many blocks invites repeated splits; the bound
        # must stop the pass at 3 shards.
        tracker.observe_batch(list(range(0, 128, 4)) * 3, now=0.0)
        rebalancer.rebalance(now=0.0)
        assert router.plan.num_shards <= 3

    def test_failed_apply_rolls_back_whole_pass(self, database):
        """A reshape that dies on the *second* replica fleet must leave the
        first fleet, the router and the tracker all on the old plan (the
        stage-all-then-commit-all apply plus the tracker rollback), and
        the next pass must genuinely recover."""
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        router = self.make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(
            router, tracker, split_heat_share=0.5, max_shards=4
        )
        tracker.observe_batch([0] * 20 + [56] * 20, now=0.0)

        def failing_stage(change, child_factory=None):
            raise RuntimeError("replica 1 died standing up a split half")

        router.fleets[1].backend.stage_topology = failing_stage
        with pytest.raises(RuntimeError):
            rebalancer.rebalance(now=0.0)
        # Nothing committed anywhere: replica 0 staged but never swapped.
        assert all(fleet.plan.version == 0 for fleet in router.fleets)
        assert tracker.plan is router.plan  # rolled back beside the router
        assert sum(tracker.heats()) == pytest.approx(40.0)
        indices = [0, 56, 127]
        assert router.retrieve_batch(indices) == [database.record(i) for i in indices]
        # With the fault cleared, the next pass reshapes normally.
        del router.fleets[1].backend.stage_topology
        report = rebalancer.rebalance(now=1.0)
        assert report.splits
        assert router.plan is tracker.plan
        assert all(fleet.plan is router.plan for fleet in router.fleets)

    def test_diverged_tracker_and_router_raise(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        router = self.make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan)
        rebalancer = Rebalancer(router, tracker)
        tracker.remap(plan.split_shard(0, 32))  # reshaped behind the router's back
        with pytest.raises(ConfigurationError, match="diverged"):
            rebalancer.rebalance(now=0.0)

    def test_placement_heat_length_mismatch_is_a_clear_error(self, database):
        plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
        with pytest.raises(ConfigurationError, match="4 shards"):
            plan_placements(plan, database.record_size, heats=[1.0, 2.0])

    def test_live_reshape_bit_equivalence_under_drifting_zipf(self, database):
        """The acceptance property: a fleet splitting and merging online
        under a drifting Zipf returns byte-for-byte the records of a
        static fleet, and heat survives every topology version change."""
        plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
        first, last = plan.shards[0], plan.shards[-1]
        half = 48
        skew = zipf_trace(database.num_records, 2 * half, exponent=1.4, seed=97)
        offsets = [first.start] * half + [last.start] * half
        stream = [
            (offset + index) % database.num_records
            for offset, index in zip(offsets, skew)
        ]
        seed_heats = heats_from_trace(
            plan,
            stream[:half],
            arrival_seconds=[0.02 * i for i in range(half)],
            window_seconds=0.2,
        )
        static = self.make_router(database, plan, seed_heats, seed=98)
        static_records = static.retrieve_batch(stream)

        router, plane = controlled_fleet(
            make_client(database, seed=98),
            database,
            plan,
            seed_heats,
            window_seconds=0.2,
            rebalance_interval_seconds=0.4,
            split_heat_share=0.5,
            merge_heat_floor=0.5,
            min_shards=2,
            max_shards=8,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
        )
        now = 0.0
        request_ids = []
        for index in stream:
            request_ids.append(router.submit(index, arrival_seconds=now))
            now += 0.02
        router.close()
        live_records = [router.take_record(rid) for rid in request_ids]

        assert live_records == static_records
        rebalancer = plane.rebalancer
        assert rebalancer.total_splits >= 1
        assert rebalancer.total_merges >= 1
        assert router.plan.version >= 2
        for report in rebalancer.reports:
            if report.splits or report.merges:
                assert sum(report.heats) > 0  # carried across the reshape


class TestAsyncReconfigure:
    def test_topology_swap_through_the_writer_quiesce(self):
        """An async deployment reshapes through ``reconfigure``: the change
        lands between flushes and later submits see the new topology."""
        database = Database.random(64, 8, seed=99)
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        replicas = [
            ShardedServer(
                database,
                server_id=i,
                plan=plan,
                child_factory=bare_backend_factory("reference"),
            )
            for i in (0, 1)
        ]
        frontend = AsyncPIRFrontend(
            make_client(database, seed=100),
            replicas,
            policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=0.01),
        )

        async def run():
            before = await frontend.retrieve_batch([0, 40])

            def reshape():
                change = replicas[0].plan.split_shard(0, 16)
                for replica in replicas:
                    replica.apply_topology(change)
                return change.new_plan.version

            version = await frontend.reconfigure(reshape)
            after = await frontend.retrieve_batch([0, 40])
            return before, after, version

        before, after, version = asyncio.run(run())
        assert version == 1
        assert before == after == [database.record(0), database.record(40)]
        assert all(replica.plan.version == 1 for replica in replicas)
