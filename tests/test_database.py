"""PIR database abstraction."""

import numpy as np
import pytest

from repro.common.errors import DatabaseError
from repro.pir.database import Database


class TestConstruction:
    def test_random_shape(self):
        db = Database.random(100, 32, seed=1)
        assert db.num_records == 100
        assert db.record_size == 32
        assert db.size_bytes == 3200

    def test_random_is_deterministic(self):
        assert Database.random(50, 16, seed=7) == Database.random(50, 16, seed=7)

    def test_from_records(self):
        db = Database.from_records([b"aaaa", b"bbbb", b"cccc"])
        assert db.num_records == 3
        assert db.record(1) == b"bbbb"

    def test_from_records_rejects_mixed_lengths(self):
        with pytest.raises(DatabaseError):
            Database.from_records([b"aaaa", b"bb"])

    def test_from_records_rejects_empty(self):
        with pytest.raises(DatabaseError):
            Database.from_records([])

    def test_zeros(self):
        db = Database.zeros(10, 8)
        assert db.record(3) == bytes(8)

    def test_rejects_empty_dimensions(self):
        with pytest.raises(DatabaseError):
            Database(np.zeros((0, 4), dtype=np.uint8))
        with pytest.raises(DatabaseError):
            Database.random(0, 32)

    def test_rejects_1d_array(self):
        with pytest.raises(DatabaseError):
            Database(np.zeros(16, dtype=np.uint8))

    def test_records_are_read_only(self):
        db = Database.random(4, 4, seed=1)
        with pytest.raises(ValueError):
            db.records[0, 0] = 7


class TestAccess:
    def test_getitem_matches_record(self, small_db):
        assert small_db[5] == small_db.record(5)

    def test_len_and_iter(self, tiny_db):
        assert len(tiny_db) == 64
        assert sum(1 for _ in tiny_db) == 64

    def test_out_of_range_index(self, tiny_db):
        with pytest.raises(DatabaseError):
            tiny_db.record(64)
        with pytest.raises(DatabaseError):
            tiny_db.record(-1)

    def test_index_bits(self):
        assert Database.random(1024, 8, seed=1).index_bits == 10
        assert Database.random(1025, 8, seed=1).index_bits == 11
        assert Database.random(1, 8, seed=1).index_bits == 1

    def test_repr_mentions_size(self, tiny_db):
        assert "Database(" in repr(tiny_db)


class TestChunking:
    def test_chunk_bounds_cover_everything(self, small_db):
        bounds = small_db.chunk_bounds(7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == small_db.num_records
        total = sum(stop - start for start, stop in bounds)
        assert total == small_db.num_records

    def test_chunk_bounds_near_equal(self, small_db):
        bounds = small_db.chunk_bounds(7)
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_records(self):
        db = Database.random(3, 4, seed=1)
        bounds = db.chunk_bounds(8)
        assert len(bounds) == 8
        assert sum(stop - start for start, stop in bounds) == 3

    def test_chunk_view(self, small_db):
        chunk = small_db.chunk(10, 20)
        assert chunk.shape == (10, small_db.record_size)
        assert np.array_equal(chunk[0], np.frombuffer(small_db.record(10), dtype=np.uint8))

    def test_chunk_invalid_range(self, small_db):
        with pytest.raises(DatabaseError):
            small_db.chunk(20, 10)

    def test_chunk_bounds_rejects_zero(self, small_db):
        with pytest.raises(DatabaseError):
            small_db.chunk_bounds(0)


class TestUpdates:
    def test_with_updates_changes_only_targets(self, tiny_db):
        new_record = bytes(range(tiny_db.record_size))
        updated = tiny_db.with_updates([(5, new_record)])
        assert updated.record(5) == new_record
        assert updated.record(6) == tiny_db.record(6)
        assert tiny_db.record(5) != new_record  # original untouched

    def test_with_updates_rejects_bad_index(self, tiny_db):
        with pytest.raises(DatabaseError):
            tiny_db.with_updates([(1000, bytes(tiny_db.record_size))])

    def test_with_updates_rejects_bad_length(self, tiny_db):
        with pytest.raises(DatabaseError):
            tiny_db.with_updates([(0, b"short")])
