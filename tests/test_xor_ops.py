"""dpXOR kernels: reference, chunked and two-stage variants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DatabaseError
from repro.pir.xor_ops import (
    DpXorStats,
    dpxor,
    dpxor_chunked,
    dpxor_many,
    dpxor_many_chunked,
    dpxor_many_two_stage,
    dpxor_two_stage,
    inner_product_mod,
    word_view,
    xor_bytes,
    xor_fold,
)


@pytest.fixture()
def db_and_selector():
    rng = np.random.default_rng(11)
    database = rng.integers(0, 256, size=(200, 32), dtype=np.uint8)
    selector = rng.integers(0, 2, size=200, dtype=np.uint8)
    return database, selector


class TestDpxor:
    def test_single_selection(self):
        database = np.arange(64, dtype=np.uint8).reshape(8, 8)
        selector = np.zeros(8, dtype=np.uint8)
        selector[4] = 1
        assert np.array_equal(dpxor(database, selector), database[4])

    def test_no_selection_is_zero(self):
        database = np.ones((5, 3), dtype=np.uint8)
        assert np.array_equal(dpxor(database, np.zeros(5, dtype=np.uint8)), np.zeros(3, dtype=np.uint8))

    def test_matches_manual_reduction(self, db_and_selector):
        database, selector = db_and_selector
        expected = np.zeros(32, dtype=np.uint8)
        for i in range(200):
            if selector[i]:
                expected ^= database[i]
        assert np.array_equal(dpxor(database, selector), expected)

    def test_stats_charge_full_database(self, db_and_selector):
        database, selector = db_and_selector
        stats = DpXorStats()
        dpxor(database, selector, stats=stats)
        assert stats.records_scanned == 200
        assert stats.db_bytes_read == 200 * 32
        assert stats.records_selected == int(selector.sum())
        assert stats.total_bytes_moved > stats.db_bytes_read

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatabaseError):
            dpxor(np.zeros((4, 2), dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestChunkedAndTwoStage:
    @pytest.mark.parametrize("num_chunks", [1, 2, 3, 7, 200, 300])
    def test_chunked_equals_reference(self, db_and_selector, num_chunks):
        database, selector = db_and_selector
        assert np.array_equal(
            dpxor_chunked(database, selector, num_chunks), dpxor(database, selector)
        )

    @pytest.mark.parametrize("num_workers", [1, 2, 5, 16, 200, 250])
    def test_two_stage_equals_reference(self, db_and_selector, num_workers):
        database, selector = db_and_selector
        assert np.array_equal(
            dpxor_two_stage(database, selector, num_workers), dpxor(database, selector)
        )

    def test_chunked_rejects_zero_chunks(self, db_and_selector):
        database, selector = db_and_selector
        with pytest.raises(DatabaseError):
            dpxor_chunked(database, selector, 0)

    def test_two_stage_rejects_zero_workers(self, db_and_selector):
        database, selector = db_and_selector
        with pytest.raises(DatabaseError):
            dpxor_two_stage(database, selector, 0)


class TestXorFold:
    def test_fold_is_xor(self):
        parts = [np.array([1, 2], dtype=np.uint8), np.array([3, 4], dtype=np.uint8)]
        assert np.array_equal(xor_fold(parts), np.array([2, 6], dtype=np.uint8))

    def test_fold_identity(self):
        part = np.array([9, 9], dtype=np.uint8)
        assert np.array_equal(xor_fold([part]), part)

    def test_fold_rejects_empty(self):
        with pytest.raises(DatabaseError):
            xor_fold([])

    def test_fold_rejects_mismatched(self):
        with pytest.raises(DatabaseError):
            xor_fold([np.zeros(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8)])


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x01\x02", b"\x03\x00") == b"\x02\x02"

    def test_self_inverse(self):
        a, b = b"hello world!", b"secret bytes"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(DatabaseError):
            xor_bytes(b"ab", b"abc")


class TestInnerProductMod:
    def test_one_hot_selects_record(self):
        database = np.arange(12, dtype=np.uint8).reshape(3, 4)
        weights = np.array([0, 1, 0], dtype=np.uint64)
        result = inner_product_mod(database, weights, modulus=257)
        assert np.array_equal(result, database[1].astype(np.uint64))

    def test_additive_shares_reconstruct(self):
        rng = np.random.default_rng(3)
        database = rng.integers(0, 256, size=(50, 8), dtype=np.uint8)
        index, p = 17, 65537
        share0 = rng.integers(0, p, size=50, dtype=np.uint64)
        share1 = (np.uint64(p) - share0) % np.uint64(p)
        share1[index] = (share1[index] + np.uint64(1)) % np.uint64(p)
        combined = (
            inner_product_mod(database, share0, p) + inner_product_mod(database, share1, p)
        ) % p
        assert np.array_equal(combined, database[index].astype(np.uint64))

    def test_rejects_small_modulus(self):
        with pytest.raises(DatabaseError):
            inner_product_mod(np.zeros((2, 2), dtype=np.uint8), np.zeros(2), modulus=1)

    def test_rejects_weight_mismatch(self):
        with pytest.raises(DatabaseError):
            inner_product_mod(np.zeros((2, 2), dtype=np.uint8), np.zeros(3), modulus=17)


class TestDpxorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_records=st.integers(min_value=1, max_value=128),
        record_size=st.integers(min_value=1, max_value=40),
        num_chunks=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_chunking_invariance(self, num_records, record_size, num_chunks, seed):
        rng = np.random.default_rng(seed)
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        selector = rng.integers(0, 2, size=num_records, dtype=np.uint8)
        reference = dpxor(database, selector)
        assert np.array_equal(dpxor_chunked(database, selector, num_chunks), reference)
        assert np.array_equal(dpxor_two_stage(database, selector, num_chunks), reference)

    @settings(max_examples=25, deadline=None)
    @given(
        num_records=st.integers(min_value=1, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_linearity_over_selectors(self, num_records, seed):
        """dpxor(v1 ^ v2) == dpxor(v1) ^ dpxor(v2): the property PIR relies on."""
        rng = np.random.default_rng(seed)
        database = rng.integers(0, 256, size=(num_records, 16), dtype=np.uint8)
        v1 = rng.integers(0, 2, size=num_records, dtype=np.uint8)
        v2 = rng.integers(0, 2, size=num_records, dtype=np.uint8)
        combined = dpxor(database, v1 ^ v2)
        assert np.array_equal(combined, dpxor(database, v1) ^ dpxor(database, v2))


class TestDpxorMany:
    def _random_case(self, num_records, record_size, batch, seed):
        rng = np.random.default_rng(seed)
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        selectors = rng.integers(0, 2, size=(batch, num_records), dtype=np.uint8)
        return database, selectors

    @pytest.mark.parametrize("record_size", [1, 3, 7, 8, 24, 32, 40])
    def test_matches_sequential_dpxor(self, record_size):
        database, selectors = self._random_case(100, record_size, 9, seed=21)
        expected = np.stack([dpxor(database, row) for row in selectors])
        assert np.array_equal(dpxor_many(database, selectors), expected)

    def test_single_query_batch(self):
        database, selectors = self._random_case(50, 16, 1, seed=22)
        assert np.array_equal(
            dpxor_many(database, selectors), dpxor(database, selectors[0])[None, :]
        )

    def test_all_zero_selector_row(self):
        database, selectors = self._random_case(60, 8, 4, seed=23)
        selectors[2] = 0
        result = dpxor_many(database, selectors)
        assert np.array_equal(result[2], np.zeros(8, dtype=np.uint8))
        assert np.array_equal(result[0], dpxor(database, selectors[0]))

    def test_chunk_boundary_forced(self):
        # A chunk smaller than the record count forces the multi-chunk walk.
        database, selectors = self._random_case(97, 8, 5, seed=24)
        expected = np.stack([dpxor(database, row) for row in selectors])
        assert np.array_equal(
            dpxor_many(database, selectors, chunk_records=16), expected
        )

    def test_stats_identical_to_sequential(self):
        database, selectors = self._random_case(80, 32, 6, seed=25)
        sequential = DpXorStats()
        for row in selectors:
            dpxor(database, row, stats=sequential)
        batched = DpXorStats()
        dpxor_many(database, selectors, stats=batched)
        assert batched == sequential

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatabaseError):
            dpxor_many(np.zeros((4, 2), dtype=np.uint8), np.zeros((3,), dtype=np.uint8))
        with pytest.raises(DatabaseError):
            dpxor_many(np.zeros((4, 2), dtype=np.uint8), np.zeros((2, 5), dtype=np.uint8))

    @pytest.mark.parametrize("num_chunks", [1, 3, 7])
    def test_chunked_variant(self, num_chunks):
        # Bit-identical to the one-pass kernel; stats identical to running the
        # *sequential chunked* kernel once per batch row (each chunk charges
        # its own partial output, exactly as on real per-DPU hardware).
        database, selectors = self._random_case(90, 24, 5, seed=26)
        expected = dpxor_many(database, selectors)
        stats = DpXorStats()
        got = dpxor_many_chunked(database, selectors, num_chunks, stats=stats)
        assert np.array_equal(got, expected)
        baseline = DpXorStats()
        for row in selectors:
            dpxor_chunked(database, row, num_chunks, stats=baseline)
        assert stats == baseline

    @pytest.mark.parametrize("num_workers", [1, 2, 5, 16])
    def test_two_stage_variant(self, num_workers):
        database, selectors = self._random_case(90, 24, 5, seed=27)
        expected = dpxor_many(database, selectors)
        stats = DpXorStats()
        got = dpxor_many_two_stage(database, selectors, num_workers, stats=stats)
        assert np.array_equal(got, expected)
        baseline = DpXorStats()
        for row in selectors:
            dpxor_two_stage(database, row, num_workers, stats=baseline)
        assert stats == baseline

    @given(
        num_records=st.integers(min_value=1, max_value=80),
        record_size=st.integers(min_value=1, max_value=17),
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_sequential(self, num_records, record_size, batch, seed):
        database, selectors = self._random_case(num_records, record_size, batch, seed)
        expected = np.stack([dpxor(database, row) for row in selectors])
        assert np.array_equal(dpxor_many(database, selectors), expected)


class TestWordFastPaths:
    @pytest.mark.parametrize("size", [1, 3, 7, 8, 15, 16, 24, 32])
    def test_xor_bytes_all_sizes(self, size):
        rng = np.random.default_rng(31)
        left = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        right = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        expected = bytes(a ^ b for a, b in zip(left, right))
        assert xor_bytes(left, right) == expected

    @pytest.mark.parametrize("size", [1, 5, 8, 24])
    def test_xor_fold_all_sizes(self, size):
        rng = np.random.default_rng(32)
        arrays = [
            rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(5)
        ]
        expected = np.zeros(size, dtype=np.uint8)
        for array in arrays:
            expected ^= array
        assert np.array_equal(xor_fold(arrays), expected)

    def test_word_view_word_aligned(self):
        aligned = np.zeros((4, 16), dtype=np.uint8)
        view = word_view(aligned)
        assert view is not None and view.dtype == np.uint64

    def test_word_view_odd_and_noncontiguous(self):
        assert word_view(np.zeros((4, 7), dtype=np.uint8)) is None
        strided = np.zeros((4, 32), dtype=np.uint8)[:, ::2]
        assert word_view(strided) is None
