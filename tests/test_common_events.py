"""Simulated-time ledger: PhaseTimer and SimClock."""

import pytest

from repro.common.events import PhaseTimer, SimClock


class TestPhaseTimer:
    def test_record_accumulates(self):
        timer = PhaseTimer()
        timer.record("eval", 1.0)
        timer.record("eval", 0.5)
        assert timer.get("eval") == pytest.approx(1.5)

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        timer.record("b", 2.0)
        assert timer.total == pytest.approx(3.0)

    def test_missing_phase_is_zero(self):
        assert PhaseTimer().get("nothing") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().record("x", -0.1)

    def test_merge_adds_phases(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.record("x", 1.0)
        b.record("x", 2.0)
        b.record("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)

    def test_merge_parallel_takes_max(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.record("x", 1.0)
        b.record("x", 2.5)
        a.merge_parallel(b)
        assert a.get("x") == pytest.approx(2.5)

    def test_scaled(self):
        timer = PhaseTimer()
        timer.record("x", 2.0)
        assert timer.scaled(0.5).get("x") == pytest.approx(1.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseTimer().scaled(-1.0)

    def test_fractions_sum_to_one(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        timer.record("b", 3.0)
        fractions = timer.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert PhaseTimer().fractions() == {}

    def test_copy_is_independent(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        copy = timer.copy()
        copy.record("a", 1.0)
        assert timer.get("a") == pytest.approx(1.0)

    def test_insertion_order_preserved(self):
        timer = PhaseTimer()
        for phase in ("eval", "copy", "dpxor"):
            timer.record(phase, 1.0)
        assert [p for p, _ in timer.items()] == ["eval", "copy", "dpxor"]


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == pytest.approx(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future_only(self):
        clock = SimClock(now=5.0)
        clock.advance_to(3.0)
        assert clock.now == pytest.approx(5.0)
        clock.advance_to(7.0)
        assert clock.now == pytest.approx(7.0)

    def test_reset(self):
        clock = SimClock(now=9.0)
        clock.reset()
        assert clock.now == 0.0
