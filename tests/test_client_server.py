"""PIR client and reference server."""

import numpy as np
import pytest

from repro.common.errors import ProtocolError
from repro.dpf.prf import make_prg
from repro.pir.client import SCHEME_DPF, SCHEME_NAIVE, PIRClient
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.server import PIRServer


@pytest.fixture()
def client(small_db):
    return PIRClient(small_db.num_records, small_db.record_size, seed=7, prg=make_prg("numpy"))


@pytest.fixture()
def servers(small_db):
    return [PIRServer(small_db, server_id=i, prg=make_prg("numpy")) for i in range(2)]


class TestClientConstruction:
    def test_rejects_single_server(self, small_db):
        with pytest.raises(ProtocolError):
            PIRClient(small_db.num_records, 32, num_servers=1)

    def test_rejects_dpf_with_three_servers(self, small_db):
        with pytest.raises(ProtocolError):
            PIRClient(small_db.num_records, 32, num_servers=3, scheme=SCHEME_DPF)

    def test_naive_with_three_servers_allowed(self, small_db):
        client = PIRClient(small_db.num_records, 32, num_servers=3, scheme=SCHEME_NAIVE)
        assert len(client.query(5)) == 3

    def test_unknown_scheme_rejected(self, small_db):
        with pytest.raises(ProtocolError):
            PIRClient(small_db.num_records, 32, scheme="fhe")

    def test_domain_bits_cover_database(self, client, small_db):
        assert 2**client.domain_bits >= small_db.num_records


class TestQueryGeneration:
    def test_dpf_queries_have_one_per_server(self, client):
        queries = client.query(100)
        assert [q.server_id for q in queries] == [0, 1]
        assert all(isinstance(q, DPFQuery) for q in queries)
        assert queries[0].query_id == queries[1].query_id

    def test_query_ids_increment(self, client):
        first = client.query(1)[0].query_id
        second = client.query(2)[0].query_id
        assert second == first + 1

    def test_out_of_range_index_rejected(self, client, small_db):
        with pytest.raises(ProtocolError):
            client.query(small_db.num_records)

    def test_naive_queries(self, small_db):
        client = PIRClient(small_db.num_records, 32, scheme=SCHEME_NAIVE, seed=1)
        queries = client.query(9)
        assert all(isinstance(q, NaiveQuery) for q in queries)

    def test_query_batch(self, client):
        batches = client.query_batch([1, 2, 3])
        assert len(batches) == 3
        assert client.stats.queries_generated >= 3

    def test_upload_bytes_accounted(self, client):
        before = client.stats.upload_bytes
        client.query(0)
        assert client.stats.upload_bytes > before


class TestServerAnswering:
    def test_two_server_retrieval(self, client, servers, small_db):
        for index in (0, 17, 512, small_db.num_records - 1):
            queries = client.query(index)
            answers = [servers[q.server_id].answer(q) for q in queries]
            assert client.reconstruct(answers) == small_db.record(index)

    def test_server_rejects_wrong_addressee(self, client, servers):
        queries = client.query(5)
        with pytest.raises(ProtocolError):
            servers[1].answer(queries[0])

    def test_server_rejects_wrong_database_size(self, client, tiny_db):
        other_server = PIRServer(tiny_db, server_id=0, prg=make_prg("numpy"))
        queries = client.query(5)
        with pytest.raises(ProtocolError):
            other_server.answer(queries[0])

    def test_server_stats_accumulate(self, client, servers, small_db):
        queries = client.query(3)
        servers[0].answer(queries[0])
        stats = servers[0].stats
        assert stats.queries_answered == 1
        assert stats.dpxor.records_scanned == small_db.num_records
        assert stats.eval.leaves_evaluated == small_db.num_records

    def test_answer_batch(self, client, servers):
        queries = [client.query(i)[0] for i in range(4)]
        answers = servers[0].answer_batch(queries)
        assert len(answers) == 4

    def test_naive_scheme_end_to_end(self, small_db):
        client = PIRClient(small_db.num_records, 32, scheme=SCHEME_NAIVE, seed=3)
        servers = [PIRServer(small_db, server_id=i) for i in range(2)]
        queries = client.query(77)
        answers = [servers[q.server_id].answer(q) for q in queries]
        assert client.reconstruct(answers) == small_db.record(77)


class TestReconstruction:
    def test_rejects_wrong_answer_count(self, client, servers):
        queries = client.query(5)
        answers = [servers[0].answer(queries[0])]
        with pytest.raises(ProtocolError):
            client.reconstruct(answers)

    def test_rejects_mixed_query_ids(self, client, servers):
        q1 = client.query(5)
        q2 = client.query(6)
        answers = [servers[0].answer(q1[0]), servers[1].answer(q2[1])]
        with pytest.raises(ProtocolError):
            client.reconstruct(answers)

    def test_rejects_duplicate_servers(self, client, servers):
        queries = client.query(5)
        answer = servers[0].answer(queries[0])
        with pytest.raises(ProtocolError):
            client.reconstruct([answer, answer])

    def test_rejects_wrong_payload_size(self, client):
        answers = [
            PIRAnswer(query_id=0, server_id=0, payload=b"ab"),
            PIRAnswer(query_id=0, server_id=1, payload=b"cd"),
        ]
        with pytest.raises(ProtocolError):
            client.reconstruct(answers)

    def test_group_answers(self, client):
        answers = [
            PIRAnswer(query_id=0, server_id=0, payload=b"a" * 32),
            PIRAnswer(query_id=1, server_id=0, payload=b"b" * 32),
            PIRAnswer(query_id=0, server_id=1, payload=b"c" * 32),
        ]
        grouped = client.group_answers(answers)
        assert set(grouped) == {0, 1}
        assert len(grouped[0]) == 2
