"""Property-based tests (hypothesis) for the DPF and the naive sharing scheme."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dpf.dpf import DPF
from repro.dpf.naive import NaiveXorQueryScheme, xor_select
from repro.dpf.traversal import make_traversal

_SETTINGS = dict(max_examples=30, deadline=None)


class TestDPFProperties:
    @settings(**_SETTINGS)
    @given(
        domain_bits=st.integers(min_value=1, max_value=9),
        alpha_fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_shares_reconstruct_point_function(self, domain_bits, alpha_fraction, seed):
        dpf = DPF(domain_bits, seed=seed)
        alpha = int(alpha_fraction * dpf.domain_size)
        key0, key1 = dpf.gen(alpha, 1)
        combined = dpf.eval_full(key0) ^ dpf.eval_full(key1)
        assert combined[alpha] == 1
        assert int(combined.sum()) == 1

    @settings(**_SETTINGS)
    @given(
        domain_bits=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_single_share_is_roughly_balanced(self, domain_bits, seed):
        """One share alone should look pseudorandom (close to half the bits set)."""
        dpf = DPF(domain_bits, seed=seed)
        alpha = dpf.domain_size // 3
        key0, _ = dpf.gen(alpha, 1)
        share = dpf.eval_full(key0)
        ones = int(share.sum())
        n = dpf.domain_size
        # Loose 4-sigma-style bound; tiny domains get a wide allowance.
        slack = max(4, int(2.5 * np.sqrt(n)))
        assert abs(ones - n / 2) <= slack

    @settings(**_SETTINGS)
    @given(
        domain_bits=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
        beta=st.integers(min_value=1, max_value=2**16 - 1),
    )
    def test_payload_round_trip(self, domain_bits, seed, beta):
        dpf = DPF(domain_bits, output_bits=16, seed=seed)
        alpha = (seed * 7) % dpf.domain_size
        key0, key1 = dpf.gen(alpha, beta)
        combined = dpf.eval_full(key0) ^ dpf.eval_full(key1)
        assert int(combined[alpha]) == beta

    @settings(**_SETTINGS)
    @given(
        domain_bits=st.integers(min_value=2, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31),
        chunk_exp=st.integers(min_value=0, max_value=5),
    )
    def test_traversals_agree(self, domain_bits, seed, chunk_exp):
        dpf = DPF(domain_bits, seed=seed)
        alpha = dpf.domain_size - 1
        key0, _ = dpf.gen(alpha, 1)
        reference = make_traversal("level_by_level").eval_full(dpf, key0)
        branch = make_traversal("branch_parallel").eval_full(dpf, key0)
        bounded = make_traversal("memory_bounded", chunk_leaves=2**chunk_exp).eval_full(dpf, key0)
        assert np.array_equal(reference, branch)
        assert np.array_equal(reference, bounded)


class TestNaiveSchemeProperties:
    @settings(**_SETTINGS)
    @given(
        num_items=st.integers(min_value=1, max_value=512),
        num_servers=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
        index_fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    def test_shares_xor_to_one_hot(self, num_items, num_servers, seed, index_fraction):
        scheme = NaiveXorQueryScheme(num_items, num_servers=num_servers, seed=seed)
        index = int(index_fraction * num_items)
        shares = scheme.share(index)
        assert scheme.recover_index(shares) == index

    @settings(**_SETTINGS)
    @given(
        num_records=st.integers(min_value=1, max_value=200),
        record_size=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_xor_select_linear_in_shares(self, num_records, record_size, seed):
        """dpXOR(v1) XOR dpXOR(v2) == the record selected by v1 XOR v2."""
        rng = np.random.default_rng(seed)
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        index = int(rng.integers(0, num_records))
        scheme = NaiveXorQueryScheme(num_records, seed=seed)
        share0, share1 = scheme.share(index)
        answer = xor_select(database, share0.bits) ^ xor_select(database, share1.bits)
        assert np.array_equal(answer, database[index])
