"""Shared fixtures for the IM-PIR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.config import IMPIRConfig
from repro.pim.config import scaled_down_config
from repro.pir.database import Database


@pytest.fixture(scope="session")
def tiny_db() -> Database:
    """A 64-record database for very fast unit tests."""
    return Database.random(64, record_size=16, seed=101)


@pytest.fixture(scope="session")
def small_db() -> Database:
    """A 1,024-record, 32-byte-record database (paper record format)."""
    return Database.random(1024, record_size=32, seed=202)


@pytest.fixture(scope="session")
def medium_db() -> Database:
    """A 4,096-record database for integration tests."""
    return Database.random(4096, record_size=32, seed=303)


@pytest.fixture()
def small_pim_config():
    """A scaled-down PIM platform (8 DPUs, 4 tasklets) for functional runs."""
    return scaled_down_config(num_dpus=8, tasklets=4)


@pytest.fixture()
def small_impir_config(small_pim_config) -> IMPIRConfig:
    """IM-PIR configuration on the scaled-down platform."""
    return IMPIRConfig(pim=small_pim_config)
