"""PIM timing model: cost formula behaviour and internal consistency."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MIB
from repro.pim.config import DPUConfig, PIMConfig, UPMEM_PAPER_CONFIG
from repro.pim.timing import PIMTimingModel, dpxor_kernel_cost


@pytest.fixture(scope="module")
def timing():
    return PIMTimingModel(UPMEM_PAPER_CONFIG)


class TestDpxorKernelCost:
    def test_scales_linearly_with_chunk_size(self, timing):
        small = timing.dpu_dpxor_cost(1 * MIB, 32).total_seconds
        large = timing.dpu_dpxor_cost(4 * MIB, 32).total_seconds
        assert large == pytest.approx(4 * small, rel=0.05)

    def test_zero_chunk_costs_only_reduction(self, timing):
        cost = timing.dpu_dpxor_cost(0, 32)
        assert cost.dma_seconds == 0.0
        assert cost.compute_seconds == 0.0
        assert cost.reduction_seconds > 0.0

    def test_selected_fraction_increases_compute(self, timing):
        low = timing.dpu_dpxor_cost(1 * MIB, 32, selected_fraction=0.0)
        high = timing.dpu_dpxor_cost(1 * MIB, 32, selected_fraction=1.0)
        assert high.compute_seconds > low.compute_seconds
        assert high.dma_seconds == pytest.approx(low.dma_seconds)

    def test_more_tasklets_reduce_compute_time(self, timing):
        few = timing.dpu_dpxor_cost(1 * MIB, 32, tasklets=2)
        many = timing.dpu_dpxor_cost(1 * MIB, 32, tasklets=16)
        assert many.compute_seconds < few.compute_seconds

    def test_tasklet_benefit_saturates_at_pipeline_depth(self, timing):
        """Beyond ~11 tasklets the pipeline is full — the paper's §5.2 choice of 16."""
        at_11 = timing.dpu_dpxor_cost(1 * MIB, 32, tasklets=11).compute_seconds
        at_16 = timing.dpu_dpxor_cost(1 * MIB, 32, tasklets=16).compute_seconds
        assert at_16 == pytest.approx(at_11, rel=1e-6)

    def test_32_byte_records_are_instruction_bound(self, timing):
        """For the paper's record size the in-order pipeline, not DMA, limits
        throughput — why effective rates sit well below the 700 MB/s DMA peak."""
        cost = timing.dpu_dpxor_cost(4 * MIB, 32)
        assert cost.compute_seconds > cost.dma_seconds

    def test_effective_bandwidth_below_dma_peak(self, timing):
        effective = timing.dpu_effective_dpxor_bandwidth(32)
        assert 50e6 < effective < UPMEM_PAPER_CONFIG.dpu.mram_wram_bandwidth

    def test_invalid_arguments(self, timing):
        with pytest.raises(ConfigurationError):
            timing.dpu_dpxor_cost(-1, 32)
        with pytest.raises(ConfigurationError):
            timing.dpu_dpxor_cost(1024, 0)
        with pytest.raises(ConfigurationError):
            timing.dpu_dpxor_cost(1024, 32, selected_fraction=1.5)
        with pytest.raises(ConfigurationError):
            timing.dpu_dpxor_cost(1024, 32, tasklets=0)

    def test_free_function_matches_method(self, timing):
        via_method = timing.dpu_dpxor_cost(2 * MIB, 32).total_seconds
        via_function = dpxor_kernel_cost(UPMEM_PAPER_CONFIG.dpu, 2 * MIB, 32).total_seconds
        assert via_method == pytest.approx(via_function)


class TestTransfersAndLaunch:
    def test_transfer_time_has_fixed_latency(self, timing):
        assert timing.host_to_dpu_seconds(0) == pytest.approx(
            UPMEM_PAPER_CONFIG.transfer.transfer_latency_s
        )

    def test_transfer_scales_with_bytes(self, timing):
        one = timing.host_to_dpu_seconds(1 << 20)
        four = timing.host_to_dpu_seconds(4 << 20)
        assert four > one

    def test_gather_slower_per_byte_than_scatter(self, timing):
        """DPU->host bandwidth is lower than host->DPU in UPMEM systems."""
        size = 64 << 20
        assert timing.dpu_to_host_seconds(size) > timing.host_to_dpu_seconds(size)

    def test_broadcast_faster_than_scatter(self, timing):
        size = 64 << 20
        assert timing.host_broadcast_seconds(size) < timing.host_to_dpu_seconds(size)

    def test_launch_scales_with_population(self, timing):
        assert timing.launch_seconds(2048) > timing.launch_seconds(256)
        assert timing.launch_seconds() == timing.launch_seconds(UPMEM_PAPER_CONFIG.num_dpus)

    def test_negative_bytes_rejected(self, timing):
        with pytest.raises(ConfigurationError):
            timing.host_to_dpu_seconds(-1)
        with pytest.raises(ConfigurationError):
            timing.dpu_to_host_seconds(-1)


class TestHostModel:
    def test_eval_time_scales_with_leaves(self, timing):
        small = timing.host_dpf_eval_seconds(1 << 20)
        large = timing.host_dpf_eval_seconds(1 << 24)
        assert large == pytest.approx(16 * small, rel=0.01)

    def test_more_threads_faster(self, timing):
        single = timing.host_dpf_eval_seconds(1 << 22, threads=1)
        many = timing.host_dpf_eval_seconds(1 << 22, threads=32)
        assert many < single

    def test_single_thread_has_no_scaling_penalty(self, timing):
        host = UPMEM_PAPER_CONFIG.host
        expected = (1 << 20) * 2.0 / host.aes_blocks_per_second_per_thread
        assert timing.host_dpf_eval_seconds(1 << 20, threads=1) == pytest.approx(expected)

    def test_aggregate_xor_cost_small(self, timing):
        assert timing.host_aggregate_xor_seconds(2048, 32) < 1e-3

    def test_invalid_arguments(self, timing):
        with pytest.raises(ConfigurationError):
            timing.host_dpf_eval_seconds(-1)
        with pytest.raises(ConfigurationError):
            timing.host_dpf_eval_seconds(10, threads=0)
        with pytest.raises(ConfigurationError):
            timing.host_aggregate_xor_seconds(-1, 32)


class TestCrossConsistency:
    def test_kernel_report_uses_same_formula(self):
        """The functional kernel's simulated time equals the analytic cost for
        the same chunk/record/tasklet/selected-fraction parameters."""
        import numpy as np

        from repro.pim.dpu import DPU
        from repro.pim.kernels import DB_BUFFER, SELECTOR_BUFFER, DpXorKernel

        config = DPUConfig(tasklets=8)
        rng = np.random.default_rng(3)
        num_records, record_size = 256, 32
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        selector = rng.integers(0, 2, size=num_records, dtype=np.uint8)

        dpu = DPU(0, config=config)
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(selector, bitorder="big"))
        report = dpu.launch(DpXorKernel(), num_records=num_records, record_size=record_size)

        expected = dpxor_kernel_cost(
            config,
            chunk_bytes=num_records * record_size,
            record_size=record_size,
            selected_fraction=float(selector.sum()) / num_records,
            tasklets=8,
        ).total_seconds
        assert report.simulated_seconds == pytest.approx(expected)
