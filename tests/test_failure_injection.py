"""Failure injection: capacity limits, misuse and paper-scale boundary cases.

These tests exercise the error paths a deployment would actually hit — a
database that overflows MRAM, WRAM working sets that do not fit, transfers to
missing buffers — and the capacity arithmetic at the paper's real sizes.
"""

import numpy as np
import pytest

from repro.common.errors import CapacityError, KernelError, TransferError
from repro.common.units import GIB, MIB
from repro.core.config import IMPIRConfig
from repro.core.partitioning import DatabasePartitioner, PartitionLayout
from repro.pim.cluster import plan_clusters
from repro.pim.config import DPUConfig, PIMConfig, scaled_down_config
from repro.pim.dpu import DPU
from repro.pim.kernels import DB_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database


class _SizedDatabase:
    """Stand-in exposing only what capacity planning reads (no huge buffers)."""

    def __init__(self, size_bytes: int, record_size: int = 32):
        self.size_bytes = size_bytes
        self.record_size = record_size
        self.num_records = size_bytes // record_size


class TestPaperScaleCapacityArithmetic:
    def test_paper_platform_holds_32_gib(self):
        """2,048 DPUs x 64 MB (75% usable) comfortably hold the 32 GB sweep max."""
        plan = plan_clusters(2048, 1, _SizedDatabase(32 * GIB), 64 * MIB)
        assert plan.db_bytes_per_dpu <= int(64 * MIB * 0.75)

    def test_eight_clusters_hold_one_gib(self):
        """The Fig. 11 configuration: 8 clusters of 256 DPUs each hold 1 GB."""
        plan = plan_clusters(2048, 8, _SizedDatabase(1 * GIB), 64 * MIB)
        assert plan.dpus_per_cluster == 256
        assert plan.db_bytes_per_dpu <= int(64 * MIB * 0.75)

    def test_eight_clusters_cannot_hold_96_gib(self):
        with pytest.raises(CapacityError):
            plan_clusters(2048, 8, _SizedDatabase(96 * GIB), 64 * MIB)

    def test_layout_capacity_check_at_paper_scale(self):
        layout = PartitionLayout(
            num_records=(8 * GIB) // 32,
            record_size=32,
            bounds=tuple(
                (i * ((8 * GIB) // 32 // 2048), (i + 1) * ((8 * GIB) // 32 // 2048))
                for i in range(2048)
            ),
        )
        partitioner = DatabasePartitioner(Database.random(8, 32, seed=1))
        partitioner.check_capacity(layout, mram_bytes_per_dpu=64 * MIB)
        with pytest.raises(CapacityError):
            partitioner.check_capacity(layout, mram_bytes_per_dpu=2 * MIB)


class TestMRAMOverflowPaths:
    def test_scatter_beyond_mram_capacity(self):
        system = UPMEMSystem(scaled_down_config(num_dpus=2, tasklets=2))
        dpu_set = system.allocate()
        oversized = np.zeros(65 * MIB, dtype=np.uint8)
        with pytest.raises(CapacityError):
            dpu_set.scatter("big", [oversized, oversized])

    def test_second_allocation_that_no_longer_fits(self):
        dpu = DPU(0, config=DPUConfig())
        dpu.store("a", np.zeros(60 * MIB, dtype=np.uint8))
        with pytest.raises(CapacityError):
            dpu.store("b", np.zeros(10 * MIB, dtype=np.uint8))

    def test_rewriting_existing_buffer_with_larger_payload(self):
        # Batched dispatches legitimately grow a buffer flush to flush, so a
        # larger rewrite reallocates in place — but it is still
        # capacity-checked, never a silent overflow.
        dpu = DPU(0, config=DPUConfig())
        dpu.store("buf", np.zeros(1024, dtype=np.uint8))
        grown = np.arange(2048, dtype=np.uint8) % 251
        dpu.store("buf", grown)
        assert np.array_equal(dpu.load("buf"), grown)
        with pytest.raises(CapacityError):
            dpu.store("buf", np.zeros(65 * MIB, dtype=np.uint8))

    def test_gather_from_missing_buffer(self):
        system = UPMEMSystem(scaled_down_config(num_dpus=2, tasklets=2))
        dpu_set = system.allocate()
        with pytest.raises(TransferError):
            dpu_set.gather("never_written", 32)


class TestWRAMOverflowPaths:
    def test_kernel_with_giant_records_overflows_wram(self):
        """Per-tasklet accumulators for multi-KB records exceed 64 KB WRAM."""
        dpu = DPU(0, config=DPUConfig(tasklets=24))
        record_size = 8192
        num_records = 8
        database = np.zeros((num_records, record_size), dtype=np.uint8)
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(np.ones(num_records, dtype=np.uint8)))
        with pytest.raises(CapacityError):
            dpu.launch(DpXorKernel(), num_records=num_records, record_size=record_size)

    def test_same_records_fit_with_fewer_tasklets(self):
        dpu = DPU(0, config=DPUConfig(tasklets=4))
        record_size = 8192
        num_records = 8
        database = np.arange(num_records * record_size, dtype=np.uint8).reshape(num_records, record_size)
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(np.ones(num_records, dtype=np.uint8)))
        report = dpu.launch(DpXorKernel(), num_records=num_records, record_size=record_size, tasklets=2)
        assert report.result.shape == (record_size,)


class TestConfigurationBoundaries:
    def test_cannot_build_impir_on_zero_dpus(self):
        with pytest.raises(Exception):
            IMPIRConfig(pim=PIMConfig(num_dpus=0))

    def test_cannot_exceed_available_dpus(self):
        with pytest.raises(Exception):
            PIMConfig(num_dpus=4096, available_dpus=2560)

    def test_full_available_population_is_valid(self):
        config = PIMConfig(num_dpus=2560, available_dpus=2560)
        assert config.total_mram_bytes == 160 * GIB

    def test_cluster_count_cannot_exceed_dpus(self):
        with pytest.raises(Exception):
            IMPIRConfig(pim=scaled_down_config(num_dpus=4), num_clusters=5)
