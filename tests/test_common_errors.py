"""Exception hierarchy sanity checks."""

import pytest

from repro.common import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.CapacityError,
    errors.ProtocolError,
    errors.KeyMismatchError,
    errors.DatabaseError,
    errors.SchedulingError,
    errors.TransferError,
    errors.KernelError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_every_error_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_key_mismatch_is_protocol_error():
    assert issubclass(errors.KeyMismatchError, errors.ProtocolError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_errors_can_carry_messages(exc):
    with pytest.raises(errors.ReproError, match="something went wrong"):
        raise exc("something went wrong")
