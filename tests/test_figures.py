"""Figure generators: structure and headline claims of every table/figure."""

import pytest

from repro.bench import paper_reference as paper
from repro.bench.figures import (
    fig3_motivation,
    fig9_throughput_latency,
    fig10_breakdown,
    fig11_clustering,
    fig12_gpu_comparison,
    table1_phase_contributions,
)
from repro.bench.reporting import (
    render_fig3,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_speedup,
    render_table1,
)


@pytest.fixture(scope="module")
def fig9():
    return fig9_throughput_latency(batch_sizes=(4, 16, 64, 256))


@pytest.fixture(scope="module")
def fig10():
    return fig10_breakdown()


@pytest.fixture(scope="module")
def fig11():
    return fig11_clustering(batch_sizes=(8, 32, 128))


@pytest.fixture(scope="module")
def fig12():
    return fig12_gpu_comparison()


class TestFig3:
    def test_structure_and_claims(self):
        result = fig3_motivation()
        assert len(result.breakdowns) == 3
        largest = result.breakdowns[-1]
        assert largest.db_size_gib == 4.0
        assert largest.dpxor_seconds > largest.eval_seconds > largest.gen_seconds
        assert result.ridge_point > 0
        dpxor_point = next(p for p in result.roofline_points if p.name == "dpXOR")
        assert dpxor_point.memory_bound
        assert "Figure 3" in render_fig3(result)


class TestFig9:
    def test_speedup_range_matches_paper_trend(self, fig9):
        speedups = fig9.speedup_vs_db_size.throughput_speedups
        assert speedups[0.5] == pytest.approx(paper.FIG9_SPEEDUP_AT_0_5_GIB, abs=0.6)
        assert speedups[8.0] == pytest.approx(paper.FIG9_SPEEDUP_AT_8_GIB, abs=1.0)
        assert speedups[8.0] > speedups[0.5]

    def test_throughput_monotonically_decreasing_in_db_size(self, fig9):
        for series in fig9.vs_db_size.values():
            throughputs = series.throughputs
            assert all(a >= b for a, b in zip(throughputs, throughputs[1:]))

    def test_latency_monotonically_increasing_in_db_size(self, fig9):
        for series in fig9.vs_db_size.values():
            latencies = series.latencies
            assert all(a <= b for a, b in zip(latencies, latencies[1:]))

    def test_batch_sweep_mean_speedup(self, fig9):
        mean = fig9.speedup_vs_batch_size.mean_throughput_speedup
        assert mean == pytest.approx(paper.FIG9_MEAN_SPEEDUP_AT_1_GIB, abs=0.8)

    def test_rendering(self, fig9):
        text = render_fig9(fig9)
        assert "Figure 9" in text and "speedup" in text
        assert "IM-PIR" in render_speedup(fig9.speedup_vs_db_size)


class TestFig10AndTable1:
    def test_impir_breakdown_is_eval_dominant(self, fig10):
        assert fig10.impir_fractions["eval"] > 0.55
        assert fig10.impir_fractions["dpxor"] < 0.35
        assert fig10.impir_fractions["copy_dpu_to_cpu"] < 0.02

    def test_cpu_breakdown_is_dpxor_dominant(self, fig10):
        assert fig10.cpu_fractions["dpxor"] > 0.6
        assert fig10.cpu_fractions["eval"] < 0.4

    def test_measured_fractions_close_to_paper(self, fig10):
        """Within 15 percentage points of the paper's Table 1 for every phase."""
        for phase, value in paper.TABLE1_IMPIR.items():
            assert abs(fig10.impir_fractions[phase] - value) < 0.15
        for phase, value in paper.TABLE1_CPU.items():
            assert abs(fig10.cpu_fractions[phase] - value) < 0.15

    def test_totals_grow_with_db_size(self, fig10):
        assert fig10.impir_table.totals() == sorted(fig10.impir_table.totals())
        assert fig10.cpu_table.totals() == sorted(fig10.cpu_table.totals())

    def test_table1_reuses_fig10(self):
        result = table1_phase_contributions(db_sizes_gib=(1.0, 4.0))
        assert set(result.impir_fractions) == {
            "eval",
            "copy_cpu_to_dpu",
            "dpxor",
            "copy_dpu_to_cpu",
            "aggregate",
        }

    def test_rendering(self, fig10):
        assert "Figure 10" in render_fig10(fig10)
        assert "Table 1" in render_table1(fig10)


class TestFig11:
    def test_more_clusters_never_hurt_throughput(self, fig11):
        single = fig11.series_by_clusters[1]
        for clusters, series in fig11.series_by_clusters.items():
            for point, base in zip(series.points, single.points):
                assert point.throughput_qps >= base.throughput_qps * 0.999

    def test_clustering_gain_exists(self, fig11):
        assert fig11.max_gain_over_single_cluster >= 1.1

    def test_rendering(self, fig11):
        assert "Figure 11" in render_fig11(fig11)


class TestFig12:
    def test_ordering_at_large_sizes(self, fig12):
        """At >= 0.5 GB the paper's ordering holds: CPU < GPU < IM-PIR."""
        for size in (0.5, 0.75, 1.0):
            cpu = fig12.series["CPU-PIR"].point_at(size).throughput_qps
            gpu = fig12.series["GPU-PIR"].point_at(size).throughput_qps
            impir = fig12.series["IM-PIR"].point_at(size).throughput_qps
            assert cpu < gpu < impir

    def test_speedup_reports_present(self, fig12):
        assert fig12.impir_over_gpu.max_throughput_speedup > 1.0
        assert fig12.gpu_over_cpu.max_throughput_speedup > 1.0

    def test_rendering(self, fig12):
        assert "Figure 12" in render_fig12(fig12)
