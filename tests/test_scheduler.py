"""Batch scheduler: pipeline semantics, makespans, cluster scaling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SchedulingError
from repro.core.scheduler import BatchScheduler, QueryTask


def _uniform(batch, eval_s, dpu_s, workers, clusters):
    return BatchScheduler(workers, clusters).schedule_uniform(batch, eval_s, dpu_s)


class TestBasics:
    def test_empty_schedule(self):
        schedule = BatchScheduler(2, 1).schedule([])
        assert schedule.makespan == 0.0
        assert schedule.mean_latency == 0.0

    def test_single_query(self):
        schedule = _uniform(1, 1.0, 0.5, workers=4, clusters=2)
        assert schedule.makespan == pytest.approx(1.5)
        assert schedule.queries[0].queueing_delay == pytest.approx(0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            QueryTask(query_id=0, eval_seconds=-1.0, dpu_seconds=0.0)

    def test_invalid_resources_rejected(self):
        with pytest.raises(SchedulingError):
            BatchScheduler(0, 1)
        with pytest.raises(SchedulingError):
            BatchScheduler(1, 0)

    def test_zero_batch_uniform_rejected(self):
        with pytest.raises(SchedulingError):
            BatchScheduler(1, 1).schedule_uniform(0, 1.0, 1.0)

    def test_deterministic(self):
        a = _uniform(16, 0.3, 0.1, 4, 2)
        b = _uniform(16, 0.3, 0.1, 4, 2)
        assert a.makespan == b.makespan
        assert [q.cluster_id for q in a.queries] == [q.cluster_id for q in b.queries]


class TestPipelineSemantics:
    def test_single_worker_serialises_eval(self):
        schedule = _uniform(4, 1.0, 0.0, workers=1, clusters=4)
        assert schedule.makespan == pytest.approx(4.0)

    def test_single_cluster_serialises_dpu_stage(self):
        schedule = _uniform(4, 0.0, 1.0, workers=4, clusters=1)
        assert schedule.makespan == pytest.approx(4.0)

    def test_eval_and_dpu_overlap_across_queries(self):
        """With ample workers the dpXOR of query i overlaps the eval of i+1."""
        schedule = _uniform(8, 1.0, 1.0, workers=8, clusters=8)
        assert schedule.makespan == pytest.approx(2.0)

    def test_eval_bound_batch(self):
        """When evaluation dominates, the makespan is the eval wave plus drain."""
        schedule = _uniform(32, 1.0, 0.01, workers=32, clusters=1)
        assert schedule.makespan == pytest.approx(1.0 + 32 * 0.01, rel=0.05)

    def test_dpu_bound_batch(self):
        """When the DPU chain dominates, the single cluster is the bottleneck."""
        schedule = _uniform(32, 0.01, 1.0, workers=32, clusters=1)
        assert schedule.makespan == pytest.approx(0.01 + 32 * 1.0, rel=0.05)

    def test_queueing_delay_reported(self):
        schedule = _uniform(4, 0.1, 1.0, workers=4, clusters=1)
        delays = [q.queueing_delay for q in schedule.queries]
        assert delays[0] == pytest.approx(0.0)
        assert delays[-1] > 0.0

    def test_worker_and_cluster_busy_accounting(self):
        schedule = _uniform(8, 0.5, 0.25, workers=4, clusters=2)
        assert schedule.worker_busy_seconds == pytest.approx(8 * 0.5)
        assert schedule.cluster_busy_seconds == pytest.approx(8 * 0.25)
        assert 0.0 < schedule.cluster_utilization() <= 1.0


class TestClusterScaling:
    def test_more_clusters_never_slower(self):
        one = _uniform(32, 0.05, 0.2, workers=32, clusters=1)
        four = _uniform(32, 0.05, 0.2, workers=32, clusters=4)
        assert four.makespan <= one.makespan
        assert four.throughput_qps >= one.throughput_qps

    def test_cluster_gain_bounded_by_eval(self):
        """Once the dpXOR stage is spread wide enough, evaluation binds."""
        eval_s, dpu_s = 0.4, 0.1
        many = _uniform(32, eval_s, dpu_s, workers=32, clusters=16)
        assert many.makespan >= eval_s

    def test_queries_spread_across_clusters(self):
        schedule = _uniform(8, 0.0, 1.0, workers=8, clusters=4)
        used = {q.cluster_id for q in schedule.queries}
        assert used == {0, 1, 2, 3}


class TestHeterogeneousTasks:
    def test_mixed_durations(self):
        tasks = [
            QueryTask(query_id=0, eval_seconds=1.0, dpu_seconds=0.1),
            QueryTask(query_id=1, eval_seconds=0.1, dpu_seconds=1.0),
            QueryTask(query_id=2, eval_seconds=0.5, dpu_seconds=0.5),
        ]
        schedule = BatchScheduler(2, 1).schedule(tasks)
        assert schedule.makespan >= 1.1
        assert len(schedule.queries) == 3
        assert {q.query_id for q in schedule.queries} == {0, 1, 2}


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=64),
        eval_ms=st.floats(min_value=0.0, max_value=50.0),
        dpu_ms=st.floats(min_value=0.0, max_value=50.0),
        workers=st.integers(min_value=1, max_value=32),
        clusters=st.integers(min_value=1, max_value=8),
    )
    def test_makespan_bounds(self, batch, eval_ms, dpu_ms, workers, clusters):
        """The makespan respects classic list-scheduling lower bounds."""
        eval_s, dpu_s = eval_ms / 1e3, dpu_ms / 1e3
        schedule = _uniform(batch, eval_s, dpu_s, workers, clusters)
        lower_bound = max(
            eval_s + dpu_s,  # one query's critical path
            batch * eval_s / workers,  # eval work spread over workers
            batch * dpu_s / clusters,  # dpu work spread over clusters
        )
        upper_bound = batch * (eval_s + dpu_s) + 1e-12
        assert lower_bound - 1e-9 <= schedule.makespan <= upper_bound
        assert len(schedule.queries) == batch
