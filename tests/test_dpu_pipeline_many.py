"""``run_dpu_pipeline_many``: exact-value pins on the documented amortisation.

``test_batched_path.py`` checks the end-to-end consequence (batched PIM
totals at or below sequential totals); this file pins the *formula* from the
``run_dpu_pipeline_many`` docstring against the timing model, phase by phase::

    copy_in  = transfer_latency + B * packed_selector_bytes / host_to_dpu_bw
    copy_out = transfer_latency + B * record_size * P / dpu_to_host_bw
    dpxor    = launch_overhead(P) + max_dpu( sum_rows kernel_cost(dpu, row) )
    copy_db  = transfer_latency + db_bytes / host_to_dpu_bw   (streamed mode)

— each charged exactly once per batch and split evenly across the ``B``
breakdowns — plus bit-identity of the per-DPU partials against ``B``
sequential :func:`run_dpu_pipeline` calls, including the edge shapes
(batch of one, a single DPU, fewer records than DPUs).
"""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.core.partitioning import (
    DatabasePartitioner,
    run_dpu_pipeline,
    run_dpu_pipeline_many,
)
from repro.core.results import PHASE_COPY_IN, PHASE_COPY_OUT, PHASE_DPXOR
from repro.core.streaming import PHASE_COPY_DB
from repro.pim.config import scaled_down_config
from repro.pim.kernels import DB_BUFFER, DpXorKernel, DpXorManyKernel
from repro.pim.system import UPMEMSystem
from repro.pim.timing import dpxor_kernel_cost


def _rig(num_records, record_size, batch, num_dpus, *, seed=11, preload=True):
    """A loaded DPU set plus the batch's selector matrix, ready to scan."""
    from repro.pir.database import Database

    system = UPMEMSystem(scaled_down_config(num_dpus=num_dpus, tasklets=4))
    dpu_set = system.allocate()
    dpu_set.load_program("dpxor")
    database = Database.random(num_records, record_size, seed=seed)
    partitioner = DatabasePartitioner(database)
    layout = partitioner.layout(num_dpus)
    db_chunks = partitioner.database_chunks(layout)
    if preload:
        dpu_set.scatter(DB_BUFFER, db_chunks)
    rng = np.random.default_rng(seed + 1)
    selectors = rng.integers(0, 2, size=(batch, num_records), dtype=np.uint8)
    return dpu_set, partitioner, layout, db_chunks, selectors


def _run_many(dpu_set, partitioner, layout, selectors, **kwargs):
    batch = selectors.shape[0]
    breakdowns = [PhaseTimer() for _ in range(batch)]
    chunks = partitioner.selector_chunks_many(layout, selectors)
    blocks = run_dpu_pipeline_many(
        dpu_set, DpXorManyKernel(), layout, chunks, breakdowns, **kwargs
    )
    return blocks, breakdowns


def _run_sequential(dpu_set, partitioner, layout, selectors, **kwargs):
    partials_per_row = []
    breakdowns = []
    for row in selectors:
        breakdown = PhaseTimer()
        chunks = partitioner.selector_chunks(layout, row)
        partials_per_row.append(
            run_dpu_pipeline(
                dpu_set, DpXorKernel(), layout, chunks, breakdown, **kwargs
            )
        )
        breakdowns.append(breakdown)
    return partials_per_row, breakdowns


class TestPayloadEquivalence:
    @pytest.mark.parametrize(
        "num_records,record_size,batch,num_dpus",
        [
            (128, 32, 5, 4),
            (128, 32, 1, 4),  # batch of one
            (96, 24, 3, 1),  # single DPU
            (3, 16, 4, 8),  # fewer records than DPUs (empty blocks)
            (37, 8, 6, 4),  # non-power-of-two domain
        ],
    )
    def test_partials_match_sequential(self, num_records, record_size, batch, num_dpus):
        dpu_set, partitioner, layout, _, selectors = _rig(
            num_records, record_size, batch, num_dpus
        )
        sequential, _ = _run_sequential(dpu_set, partitioner, layout, selectors)
        blocks, _ = _run_many(dpu_set, partitioner, layout, selectors)
        assert len(blocks) == num_dpus
        for dpu_index, block in enumerate(blocks):
            assert block.shape == (batch, record_size)
            for row in range(batch):
                assert np.array_equal(
                    block[row], np.asarray(sequential[row][dpu_index]).reshape(-1)
                )


class TestAmortizedFormula:
    NUM_RECORDS, RECORD_SIZE, BATCH, NUM_DPUS = 128, 32, 5, 4

    def _totals(self, breakdowns, phase):
        return sum(b.get(phase) for b in breakdowns)

    def test_copy_phases_charge_latency_once(self):
        dpu_set, partitioner, layout, _, selectors = _rig(
            self.NUM_RECORDS, self.RECORD_SIZE, self.BATCH, self.NUM_DPUS
        )
        _, breakdowns = _run_many(dpu_set, partitioner, layout, selectors)
        timing = dpu_set.timing

        selector_bytes = self.BATCH * partitioner.packed_selector_bytes(layout)
        assert self._totals(breakdowns, PHASE_COPY_IN) == pytest.approx(
            timing.host_to_dpu_seconds(selector_bytes)
        )
        result_bytes = self.BATCH * self.RECORD_SIZE * self.NUM_DPUS
        assert self._totals(breakdowns, PHASE_COPY_OUT) == pytest.approx(
            timing.dpu_to_host_seconds(result_bytes)
        )

    def test_dpxor_charges_one_launch_overhead(self):
        dpu_set, partitioner, layout, _, selectors = _rig(
            self.NUM_RECORDS, self.RECORD_SIZE, self.BATCH, self.NUM_DPUS
        )
        _, breakdowns = _run_many(dpu_set, partitioner, layout, selectors)
        timing = dpu_set.timing

        per_dpu = []
        for dpu_index, (start, stop) in enumerate(layout.bounds):
            rows = selectors[:, start:stop]
            records = stop - start
            total = 0.0
            for selected in rows.sum(axis=1).tolist():
                total += dpxor_kernel_cost(
                    dpu_set.dpus[dpu_index].config,
                    chunk_bytes=records * self.RECORD_SIZE,
                    record_size=self.RECORD_SIZE,
                    selected_fraction=selected / records,
                    tasklets=4,
                ).total_seconds
            per_dpu.append(total)
        expected = timing.launch_seconds(self.NUM_DPUS) + max(per_dpu)
        assert self._totals(breakdowns, PHASE_DPXOR) == pytest.approx(expected)

    def test_even_split_across_breakdowns(self):
        dpu_set, partitioner, layout, _, selectors = _rig(
            self.NUM_RECORDS, self.RECORD_SIZE, self.BATCH, self.NUM_DPUS
        )
        _, breakdowns = _run_many(dpu_set, partitioner, layout, selectors)
        for phase in (PHASE_COPY_IN, PHASE_DPXOR, PHASE_COPY_OUT):
            shares = [b.get(phase) for b in breakdowns]
            assert all(share == pytest.approx(shares[0]) for share in shares)

    def test_amortisation_vs_sequential_is_exact(self):
        # copy_in and copy_out each save exactly (B - 1) transfer latencies;
        # dpxor saves exactly (B - 1) launch overheads plus whatever
        # max-of-sums beats sum-of-maxes by (>= 0); scan bytes never amortise.
        dpu_set, partitioner, layout, _, selectors = _rig(
            self.NUM_RECORDS, self.RECORD_SIZE, self.BATCH, self.NUM_DPUS
        )
        _, seq = _run_sequential(dpu_set, partitioner, layout, selectors)
        _, bat = _run_many(dpu_set, partitioner, layout, selectors)
        transfer = dpu_set.timing.config.transfer
        saved_latency = (self.BATCH - 1) * transfer.transfer_latency_s
        for phase in (PHASE_COPY_IN, PHASE_COPY_OUT):
            assert self._totals(seq, phase) - self._totals(bat, phase) == pytest.approx(
                saved_latency
            )
        saved_launch = (self.BATCH - 1) * dpu_set.timing.launch_seconds(self.NUM_DPUS)
        dpxor_saving = self._totals(seq, PHASE_DPXOR) - self._totals(bat, PHASE_DPXOR)
        assert dpxor_saving >= saved_launch - 1e-15

    def test_batch_of_one_matches_sequential_exactly(self):
        dpu_set, partitioner, layout, _, selectors = _rig(
            self.NUM_RECORDS, self.RECORD_SIZE, 1, self.NUM_DPUS
        )
        _, seq = _run_sequential(dpu_set, partitioner, layout, selectors)
        _, bat = _run_many(dpu_set, partitioner, layout, selectors)
        for phase in (PHASE_COPY_IN, PHASE_DPXOR, PHASE_COPY_OUT):
            assert bat[0].get(phase) == pytest.approx(seq[0].get(phase))


class TestStreamedDbCopy:
    def test_db_copy_charged_once_per_batch(self):
        dpu_set, partitioner, layout, db_chunks, selectors = _rig(
            64, 16, 4, 4, preload=False
        )
        _, breakdowns = _run_many(
            dpu_set,
            partitioner,
            layout,
            selectors,
            db_chunks=db_chunks,
            db_copy_phase=PHASE_COPY_DB,
        )
        db_bytes = sum(chunk.size for chunk in db_chunks)
        total = sum(b.get(PHASE_COPY_DB) for b in breakdowns)
        assert total == pytest.approx(dpu_set.timing.host_to_dpu_seconds(db_bytes))
        shares = [b.get(PHASE_COPY_DB) for b in breakdowns]
        assert all(share == pytest.approx(total / len(breakdowns)) for share in shares)

    def test_db_chunks_require_phase_name(self):
        dpu_set, partitioner, layout, db_chunks, selectors = _rig(
            64, 16, 2, 4, preload=False
        )
        chunks = partitioner.selector_chunks_many(layout, selectors)
        with pytest.raises(ConfigurationError):
            run_dpu_pipeline_many(
                dpu_set,
                DpXorManyKernel(),
                layout,
                chunks,
                [PhaseTimer(), PhaseTimer()],
                db_chunks=db_chunks,
            )


class TestValidation:
    def test_empty_batch_rejected(self):
        dpu_set, partitioner, layout, _, selectors = _rig(64, 16, 2, 4)
        chunks = partitioner.selector_chunks_many(layout, selectors)
        with pytest.raises(ConfigurationError):
            run_dpu_pipeline_many(dpu_set, DpXorManyKernel(), layout, chunks, [])

    def test_selector_matrix_shape_checked(self):
        _, partitioner, layout, _, _ = _rig(64, 16, 2, 4)
        with pytest.raises(ConfigurationError):
            partitioner.selector_chunks_many(
                layout, np.zeros((2, 63), dtype=np.uint8)
            )
        with pytest.raises(ConfigurationError):
            partitioner.selector_chunks_many(layout, np.zeros(64, dtype=np.uint8))
