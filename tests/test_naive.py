"""Naive additive-share query scheme (paper §2.3, Fig. 2)."""

import numpy as np
import pytest

from repro.dpf.naive import NaiveShare, NaiveXorQueryScheme, xor_select


class TestNaiveShare:
    def test_valid_share(self):
        share = NaiveShare(server_id=0, bits=np.array([0, 1, 1, 0], dtype=np.uint8))
        assert share.num_items == 4
        assert share.size_bytes == 1

    def test_size_bytes_rounds_up(self):
        share = NaiveShare(server_id=0, bits=np.zeros(9, dtype=np.uint8))
        assert share.size_bytes == 2

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            NaiveShare(server_id=0, bits=np.array([0, 2], dtype=np.uint8))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            NaiveShare(server_id=0, bits=np.zeros((2, 2), dtype=np.uint8))


class TestScheme:
    def test_paper_example_shape(self):
        """The Fig. 2 example: 4-item DB, index 1, two servers."""
        scheme = NaiveXorQueryScheme(num_items=4, seed=0)
        shares = scheme.share(1)
        assert len(shares) == 2
        indicator = NaiveXorQueryScheme.reconstruct_indicator(shares)
        assert list(indicator) == [0, 1, 0, 0]

    def test_recover_index(self):
        scheme = NaiveXorQueryScheme(num_items=100, seed=3)
        shares = scheme.share(42)
        assert NaiveXorQueryScheme.recover_index(shares) == 42

    def test_three_servers(self):
        scheme = NaiveXorQueryScheme(num_items=50, num_servers=3, seed=1)
        shares = scheme.share(7)
        assert len(shares) == 3
        assert NaiveXorQueryScheme.recover_index(shares) == 7

    def test_single_share_is_not_one_hot(self):
        """Any individual share must not reveal the index (it is uniform)."""
        scheme = NaiveXorQueryScheme(num_items=256, seed=5)
        shares = scheme.share(100)
        for share in shares:
            assert int(share.bits.sum()) > 1

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            NaiveXorQueryScheme(num_items=10, seed=1).share(10)

    def test_requires_two_servers(self):
        with pytest.raises(ValueError):
            NaiveXorQueryScheme(num_items=10, num_servers=1)

    def test_recover_rejects_non_one_hot(self):
        scheme = NaiveXorQueryScheme(num_items=8, seed=2)
        share0, _ = scheme.share(3)
        with pytest.raises(ValueError):
            NaiveXorQueryScheme.recover_index([share0, share0])

    def test_reconstruct_rejects_empty(self):
        with pytest.raises(ValueError):
            NaiveXorQueryScheme.reconstruct_indicator([])

    def test_mismatched_share_lengths_rejected(self):
        a = NaiveShare(server_id=0, bits=np.zeros(4, dtype=np.uint8))
        b = NaiveShare(server_id=1, bits=np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            NaiveXorQueryScheme.reconstruct_indicator([a, b])


class TestXorSelect:
    def test_selects_single_record(self):
        database = np.arange(40, dtype=np.uint8).reshape(10, 4)
        selector = np.zeros(10, dtype=np.uint8)
        selector[3] = 1
        assert np.array_equal(xor_select(database, selector), database[3])

    def test_empty_selection_is_zero(self):
        database = np.ones((5, 4), dtype=np.uint8)
        assert np.array_equal(xor_select(database, np.zeros(5, dtype=np.uint8)), np.zeros(4, dtype=np.uint8))

    def test_xor_of_pair(self):
        database = np.array([[1, 2], [4, 8], [16, 32]], dtype=np.uint8)
        selector = np.array([1, 0, 1], dtype=np.uint8)
        assert np.array_equal(xor_select(database, selector), np.array([17, 34], dtype=np.uint8))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_select(np.zeros((4, 2), dtype=np.uint8), np.zeros(5, dtype=np.uint8))

    def test_rejects_1d_database(self):
        with pytest.raises(ValueError):
            xor_select(np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))
