"""IM-PIR server: functional correctness, breakdowns, batching, clustering."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ProtocolError
from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRDeployment, IMPIRServer
from repro.core.results import (
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
)
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.server import PIRServer


@pytest.fixture()
def setup(small_db, small_impir_config):
    client = PIRClient(small_db.num_records, small_db.record_size, seed=5, prg=make_prg("numpy"))
    server = IMPIRServer(small_db, config=small_impir_config, server_id=0)
    return client, server, small_db


class TestConstruction:
    def test_preload_partitions_database(self, setup):
        _, server, db = setup
        assert server.num_clusters == 1
        layout = server.layout_for_cluster(0)
        assert layout.validate_coverage()
        assert server.preload_report is not None
        assert server.preload_report.total > 0
        assert 0 < server.mram_utilization() < 1

    def test_database_too_large_for_platform_rejected(self):
        # 2 DPUs x 64 MB with 25% reserve cannot hold a ~100 MB database... use
        # a smaller synthetic: 2 DPUs, database bigger than usable MRAM.
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=2, tasklets=2))
        too_big = Database.random((97 * (1 << 20)) // 1024, 1024, seed=1)
        with pytest.raises(CapacityError):
            IMPIRServer(too_big, config=config)

    def test_invalid_server_id_rejected(self, small_db, small_impir_config):
        with pytest.raises(ProtocolError):
            IMPIRServer(small_db, config=small_impir_config, server_id=2)

    def test_can_cluster_check(self, setup):
        _, server, _ = setup
        assert server.can_cluster(2)
        assert not server.can_cluster(0)
        assert not server.can_cluster(10_000)


class TestSingleQuery:
    def test_answers_match_reference_server(self, setup):
        client, server, db = setup
        reference = PIRServer(db, server_id=0, prg=make_prg("numpy"))
        for index in (0, 100, db.num_records - 1):
            query = client.query(index)[0]
            assert server.answer(query).answer.payload == reference.answer(query).payload

    def test_breakdown_has_all_phases(self, setup):
        client, server, _ = setup
        result = server.answer(client.query(50)[0])
        for phase in (PHASE_EVAL, PHASE_COPY_IN, PHASE_DPXOR, PHASE_COPY_OUT, PHASE_AGGREGATE):
            assert result.breakdown.get(phase) > 0
        assert result.latency_seconds == pytest.approx(result.breakdown.total)
        assert result.dpu_pipeline_seconds < result.latency_seconds

    def test_phase_fractions_sum_to_one(self, setup):
        client, server, _ = setup
        fractions = server.answer(client.query(1)[0]).phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_rejects_wrong_server(self, setup):
        client, server, _ = setup
        query_for_other = client.query(3)[1]
        with pytest.raises(ProtocolError):
            server.answer(query_for_other)

    def test_rejects_wrong_database_shape(self, setup, tiny_db):
        client, server, _ = setup
        other_client = PIRClient(tiny_db.num_records, tiny_db.record_size, seed=1)
        with pytest.raises(ProtocolError):
            server.answer(other_client.query(0)[0])

    def test_rejects_bad_cluster_index(self, setup):
        client, server, _ = setup
        with pytest.raises(ProtocolError):
            server.answer(client.query(0)[0], cluster_index=5)


class TestBatch:
    def test_batch_answers_are_correct(self, setup):
        client, server, db = setup
        reference = PIRServer(db, server_id=0, prg=make_prg("numpy"))
        indices = [3, 77, 512, 1023, 0]
        queries = [client.query(i)[0] for i in indices]
        batch = server.answer_batch(queries)
        assert batch.batch_size == len(indices)
        for query, result in zip(queries, batch.results):
            assert result.answer.payload == reference.answer(query).payload

    def test_batch_schedule_consistency(self, setup):
        client, server, _ = setup
        queries = [client.query(i)[0] for i in range(8)]
        batch = server.answer_batch(queries)
        assert batch.latency_seconds > 0
        assert batch.throughput_qps == pytest.approx(8 / batch.latency_seconds)
        assert batch.latency_seconds < sum(r.latency_seconds for r in batch.results)

    def test_batch_mean_breakdown(self, setup):
        client, server, _ = setup
        queries = [client.query(i)[0] for i in range(4)]
        mean = server.answer_batch(queries).mean_breakdown()
        assert mean.get(PHASE_EVAL) > 0
        assert mean.get(PHASE_DPXOR) > 0

    def test_empty_batch_rejected(self, setup):
        _, server, _ = setup
        with pytest.raises(ProtocolError):
            server.answer_batch([])


class TestClustering:
    def test_clustered_server_is_correct(self, small_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=2), num_clusters=4)
        server = IMPIRServer(small_db, config=config, server_id=0)
        client = PIRClient(small_db.num_records, small_db.record_size, seed=2, prg=make_prg("numpy"))
        reference = PIRServer(small_db, server_id=0, prg=make_prg("numpy"))
        queries = [client.query(i)[0] for i in range(8)]
        batch = server.answer_batch(queries)
        assert {r.cluster_id for r in batch.results} == {0, 1, 2, 3}
        for query, result in zip(queries, batch.results):
            assert result.answer.payload == reference.answer(query).payload

    def test_each_cluster_holds_full_database(self, small_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=2), num_clusters=2)
        server = IMPIRServer(small_db, config=config, server_id=0)
        for cluster_index in range(2):
            assert server.layout_for_cluster(cluster_index).num_records == small_db.num_records

    def test_clustering_improves_or_matches_batch_latency(self, small_db):
        base = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=2))
        client = PIRClient(small_db.num_records, small_db.record_size, seed=4, prg=make_prg("numpy"))
        queries = [client.query(i)[0] for i in range(12)]
        single = IMPIRServer(small_db, config=base, server_id=0).answer_batch(queries)
        clustered = IMPIRServer(small_db, config=base.with_clusters(4), server_id=0).answer_batch(queries)
        assert clustered.latency_seconds <= single.latency_seconds * 1.001


class TestDeployment:
    def test_end_to_end_retrieval(self, medium_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
        deployment = IMPIRDeployment(medium_db, config=config, client_seed=1)
        for index in (0, 1234, medium_db.num_records - 1):
            assert deployment.retrieve(index) == medium_db.record(index)

    def test_end_to_end_batch(self, medium_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=2)
        deployment = IMPIRDeployment(medium_db, config=config, client_seed=2)
        indices = [5, 99, 2048, 4095]
        records = deployment.retrieve_batch(indices)
        assert records == [medium_db.record(i) for i in indices]


class TestConfigValidation:
    def test_rejects_more_clusters_than_dpus(self):
        with pytest.raises(Exception):
            IMPIRConfig(pim=scaled_down_config(num_dpus=4), num_clusters=8)

    def test_with_clusters_copy(self, small_impir_config):
        assert small_impir_config.with_clusters(2).num_clusters == 2
        assert small_impir_config.num_clusters == 1

    def test_effective_workers_default_to_host_threads(self, small_impir_config):
        assert small_impir_config.effective_eval_workers == small_impir_config.pim.host.total_threads
        assert small_impir_config.dpus_per_cluster == 8
