"""UPMEM system: topology, allocation, transfers, collective launches."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigurationError, KernelError, TransferError
from repro.pim.config import DPUS_PER_CHIP, DPUS_PER_RANK, PIMConfig, scaled_down_config
from repro.pim.dpu import DPU
from repro.pim.kernels import DB_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pim.module import build_topology
from repro.pim.system import DPUSet, UPMEMSystem
from repro.pim.timing import PIMTimingModel
from repro.pim.transfer import TransferEngine
from repro.pir.database import Database
from repro.pir.xor_ops import dpxor, xor_fold


@pytest.fixture()
def system():
    return UPMEMSystem(scaled_down_config(num_dpus=8, tasklets=4))


class TestTopology:
    def test_build_topology_groups_dpus(self):
        dpus = [DPU(i) for i in range(DPUS_PER_RANK * 2 + 5)]
        modules = build_topology(dpus)
        assert modules[0].num_dpus == DPUS_PER_RANK * 2
        assert sum(module.num_dpus for module in modules) == len(dpus)
        assert modules[0].ranks[0].chips[0].num_dpus == DPUS_PER_CHIP

    def test_module_mram_capacity(self):
        dpus = [DPU(i) for i in range(128)]
        modules = build_topology(dpus)
        assert modules[0].mram_bytes == 128 * 64 * 2**20

    def test_system_topology_matches_population(self, system):
        assert sum(module.num_dpus for module in system.modules) == system.num_dpus


class TestAllocation:
    def test_allocate_all(self, system):
        dpu_set = system.allocate()
        assert dpu_set.num_dpus == 8

    def test_allocate_subset_then_exhaust(self, system):
        first = system.allocate(5)
        second = system.allocate(3)
        assert first.num_dpus == 5 and second.num_dpus == 3
        with pytest.raises(CapacityError):
            system.allocate(1)

    def test_release_all(self, system):
        system.allocate(8)
        system.release_all()
        assert system.allocate(8).num_dpus == 8

    def test_aggregate_bandwidth_property(self, system):
        assert system.aggregate_bandwidth == pytest.approx(8 * 700e6)

    def test_split_into_clusters(self, system):
        dpu_set = system.allocate()
        subsets = dpu_set.split(3)
        assert [s.num_dpus for s in subsets] == [3, 3, 2]
        assert sum(s.num_dpus for s in subsets) == 8

    def test_split_more_than_dpus_rejected(self, system):
        dpu_set = system.allocate()
        with pytest.raises(ConfigurationError):
            dpu_set.split(9)


class TestTransfers:
    def test_scatter_and_gather_round_trip(self, system):
        dpu_set = system.allocate(4)
        arrays = [np.full(16, i, dtype=np.uint8) for i in range(4)]
        report = dpu_set.scatter("buf", arrays)
        assert report.total_bytes == 64
        assert report.simulated_seconds > 0
        gathered, gather_report = dpu_set.gather("buf", 16)
        for i, arr in enumerate(gathered):
            assert np.array_equal(arr, arrays[i])
        assert gather_report.direction == "dpu_to_host"

    def test_broadcast(self, system):
        dpu_set = system.allocate(4)
        payload = np.arange(8, dtype=np.uint8)
        report = dpu_set.broadcast("shared", payload)
        assert report.total_bytes == 32
        for dpu in dpu_set.dpus:
            assert np.array_equal(dpu.load("shared"), payload)

    def test_scatter_count_mismatch(self, system):
        dpu_set = system.allocate(4)
        with pytest.raises(TransferError):
            dpu_set.scatter("buf", [np.zeros(4, dtype=np.uint8)] * 3)

    def test_broadcast_faster_than_scatter_per_byte(self, system):
        """Broadcast bandwidth exceeds scatter bandwidth in the cost model."""
        dpu_set = system.allocate(4)
        arrays = [np.zeros(1 << 16, dtype=np.uint8) for _ in range(4)]
        scatter = dpu_set.scatter("a", arrays)
        broadcast = dpu_set.broadcast("b", arrays[0])
        assert broadcast.effective_bandwidth > scatter.effective_bandwidth

    def test_transfer_engine_tracks_totals(self, system):
        dpu_set = system.allocate(2)
        dpu_set.scatter("x", [np.zeros(8, dtype=np.uint8)] * 2)
        dpu_set.gather("x", 8)
        assert dpu_set.transfer.bytes_to_dpus == 16
        assert dpu_set.transfer.bytes_from_dpus == 16

    def test_gather_rejects_zero_bytes(self, system):
        dpu_set = system.allocate(2)
        dpu_set.scatter("x", [np.zeros(8, dtype=np.uint8)] * 2)
        with pytest.raises(TransferError):
            dpu_set.gather("x", 0)


class TestCollectiveLaunch:
    def test_distributed_dpxor_matches_reference(self, system):
        db = Database.random(512, 32, seed=13)
        selector = np.random.default_rng(1).integers(0, 2, 512, dtype=np.uint8)
        dpu_set = system.allocate()
        bounds = db.chunk_bounds(dpu_set.num_dpus)
        dpu_set.load_program("dpxor")
        dpu_set.scatter(DB_BUFFER, [db.chunk(a, b).reshape(-1) for a, b in bounds])
        dpu_set.scatter(SELECTOR_BUFFER, [np.packbits(selector[a:b], bitorder="big") for a, b in bounds])
        launch = dpu_set.launch(
            DpXorKernel(),
            per_dpu_kwargs=[{"num_records": b - a, "record_size": 32} for a, b in bounds],
        )
        combined = xor_fold(launch.results())
        assert np.array_equal(combined, dpxor(db.records, selector))

    def test_launch_report_structure(self, system):
        db = Database.random(64, 16, seed=2)
        dpu_set = system.allocate(4)
        bounds = db.chunk_bounds(4)
        dpu_set.scatter(DB_BUFFER, [db.chunk(a, b).reshape(-1) for a, b in bounds])
        dpu_set.scatter(
            SELECTOR_BUFFER,
            [np.packbits(np.ones(b - a, dtype=np.uint8), bitorder="big") for a, b in bounds],
        )
        launch = dpu_set.launch(
            DpXorKernel(),
            per_dpu_kwargs=[{"num_records": b - a, "record_size": 16} for a, b in bounds],
        )
        assert launch.num_dpus == 4
        assert len(launch.reports) == 4
        assert launch.simulated_seconds >= launch.max_dpu_seconds
        assert launch.launch_overhead_seconds > 0
        assert launch.total_instructions > 0

    def test_per_dpu_kwargs_length_checked(self, system):
        dpu_set = system.allocate(4)
        with pytest.raises(KernelError):
            dpu_set.launch(DpXorKernel(), per_dpu_kwargs=[{}] * 3)

    def test_empty_dpu_set_rejected(self, system):
        with pytest.raises(ConfigurationError):
            DPUSet([], PIMTimingModel(PIMConfig()))


class TestTransferEngineDirect:
    def test_scatter_requires_matching_arrays(self):
        engine = TransferEngine(PIMTimingModel(PIMConfig()))
        with pytest.raises(TransferError):
            engine.scatter([DPU(0)], "x", [])

    def test_broadcast_requires_dpus(self):
        engine = TransferEngine(PIMTimingModel(PIMConfig()))
        with pytest.raises(TransferError):
            engine.broadcast([], "x", np.zeros(4, dtype=np.uint8))
