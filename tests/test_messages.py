"""Wire messages: queries and answers."""

import numpy as np
import pytest

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPF
from repro.dpf.naive import NaiveShare
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer


@pytest.fixture(scope="module")
def dpf_keys():
    dpf = DPF(domain_bits=8, seed=5)
    return dpf.gen(12, 1)


class TestDPFQuery:
    def test_valid_query(self, dpf_keys):
        key0, _ = dpf_keys
        query = DPFQuery(query_id=1, server_id=0, key=key0, num_records=200)
        assert query.upload_bytes == key0.size_bytes

    def test_rejects_bad_server_id(self, dpf_keys):
        key0, _ = dpf_keys
        with pytest.raises(ProtocolError):
            DPFQuery(query_id=1, server_id=2, key=key0, num_records=200)

    def test_rejects_database_larger_than_domain(self, dpf_keys):
        key0, _ = dpf_keys
        with pytest.raises(ProtocolError):
            DPFQuery(query_id=1, server_id=0, key=key0, num_records=10_000)

    def test_rejects_non_positive_records(self, dpf_keys):
        key0, _ = dpf_keys
        with pytest.raises(ProtocolError):
            DPFQuery(query_id=1, server_id=0, key=key0, num_records=0)


class TestNaiveQuery:
    def test_valid_query(self):
        share = NaiveShare(server_id=1, bits=np.zeros(64, dtype=np.uint8))
        query = NaiveQuery(query_id=3, server_id=1, share=share, num_records=64)
        assert query.upload_bytes == 8

    def test_rejects_length_mismatch(self):
        share = NaiveShare(server_id=0, bits=np.zeros(64, dtype=np.uint8))
        with pytest.raises(ProtocolError):
            NaiveQuery(query_id=3, server_id=0, share=share, num_records=100)

    def test_rejects_negative_server(self):
        share = NaiveShare(server_id=0, bits=np.zeros(4, dtype=np.uint8))
        with pytest.raises(ProtocolError):
            NaiveQuery(query_id=0, server_id=-1, share=share, num_records=4)


class TestPIRAnswer:
    def test_valid_answer(self):
        answer = PIRAnswer(query_id=0, server_id=1, payload=b"\x00" * 32)
        assert answer.download_bytes == 32
        assert answer.payload_array().shape == (32,)

    def test_rejects_empty_payload(self):
        with pytest.raises(ProtocolError):
            PIRAnswer(query_id=0, server_id=0, payload=b"")

    def test_optional_timing_attached(self):
        answer = PIRAnswer(query_id=0, server_id=0, payload=b"x", simulated_seconds=0.5)
        assert answer.simulated_seconds == pytest.approx(0.5)

    def test_dpf_query_upload_much_smaller_than_naive(self, dpf_keys):
        """The communication advantage of DPFs: O(lambda log N) vs O(N) bits."""
        key0, _ = dpf_keys
        num_records = 256
        dpf_query = DPFQuery(query_id=0, server_id=0, key=key0, num_records=num_records)
        naive_query = NaiveQuery(
            query_id=0,
            server_id=0,
            share=NaiveShare(server_id=0, bits=np.zeros(num_records, dtype=np.uint8)),
            num_records=num_records,
        )
        # At 256 records the DPF key is bigger; the advantage appears at scale.
        big_dpf = DPF(domain_bits=24, seed=1).gen(5)[0]
        big_query = DPFQuery(query_id=0, server_id=0, key=big_dpf, num_records=1 << 24)
        assert big_query.upload_bytes < (1 << 24) // 8
        assert naive_query.upload_bytes == num_records // 8
        assert dpf_query.upload_bytes > 0
