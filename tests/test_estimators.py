"""Analytic estimators: scaling behaviour and cross-system relationships."""

import pytest

from repro.bench.estimators import (
    CPUEstimator,
    GPUEstimator,
    IMPIREstimator,
    MotivationEstimator,
)
from repro.core.config import IMPIRConfig
from repro.core.results import PHASE_COPY_IN, PHASE_DPXOR, PHASE_EVAL
from repro.workloads.generator import DatabaseSpec

SPEC_1GIB = DatabaseSpec.from_size_gib(1.0)
SPEC_8GIB = DatabaseSpec.from_size_gib(8.0)


class TestIMPIREstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return IMPIREstimator()

    def test_latency_grows_with_db_size(self, estimator):
        assert estimator.single_query_latency(SPEC_8GIB) > estimator.single_query_latency(SPEC_1GIB)

    def test_breakdown_is_eval_dominant(self, estimator):
        """Take-away 4: in IM-PIR the host-side DPF evaluation dominates."""
        breakdown = estimator.query_breakdown(SPEC_8GIB)
        fractions = breakdown.fractions()
        assert fractions[PHASE_EVAL] > 0.5
        assert fractions[PHASE_EVAL] > fractions[PHASE_DPXOR]

    def test_dpu_chain_scales_with_fewer_dpus(self, estimator):
        full = estimator.dpu_chain_breakdown(SPEC_1GIB, dpus=2048).get(PHASE_DPXOR)
        quarter = estimator.dpu_chain_breakdown(SPEC_1GIB, dpus=512).get(PHASE_DPXOR)
        assert quarter > full

    def test_batch_throughput_improves_with_batch_size(self, estimator):
        small = estimator.batch_estimate(SPEC_1GIB, 4)
        large = estimator.batch_estimate(SPEC_1GIB, 64)
        assert large.throughput_qps > small.throughput_qps
        assert large.latency_seconds > small.latency_seconds

    def test_clustering_helps_at_one_gib(self):
        single = IMPIREstimator(IMPIRConfig(num_clusters=1)).batch_estimate(SPEC_1GIB, 64)
        clustered = IMPIREstimator(IMPIRConfig(num_clusters=8)).batch_estimate(SPEC_1GIB, 64)
        assert clustered.throughput_qps >= single.throughput_qps

    def test_estimate_has_per_query_breakdown(self, estimator):
        estimate = estimator.batch_estimate(SPEC_1GIB, 32)
        assert estimate.per_query_breakdown.get(PHASE_COPY_IN) > 0
        assert estimate.per_query_latency > 0


class TestCPUEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return CPUEstimator()

    def test_breakdown_is_dpxor_dominant(self, estimator):
        fractions = estimator.query_breakdown(SPEC_8GIB).fractions()
        assert fractions["dpxor"] > fractions["eval"]

    def test_throughput_drops_with_db_size(self, estimator):
        assert (
            estimator.batch_estimate(SPEC_8GIB, 32).throughput_qps
            < estimator.batch_estimate(SPEC_1GIB, 32).throughput_qps
        )


class TestGPUEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return GPUEstimator()

    def test_throughput_drops_with_db_size(self, estimator):
        assert (
            estimator.batch_estimate(SPEC_8GIB, 32).throughput_qps
            < estimator.batch_estimate(SPEC_1GIB, 32).throughput_qps
        )


class TestCrossSystemClaims:
    """The paper's comparative claims, asserted at the model level."""

    def test_impir_beats_cpu_at_every_paper_db_size(self):
        impir, cpu = IMPIREstimator(), CPUEstimator()
        for size in (0.5, 1.0, 2.0, 4.0, 8.0):
            spec = DatabaseSpec.from_size_gib(size)
            assert (
                impir.batch_estimate(spec, 32).throughput_qps
                > cpu.batch_estimate(spec, 32).throughput_qps
            )

    def test_speedup_grows_with_db_size(self):
        """Fig. 9(a): the IM-PIR advantage widens as the database grows."""
        impir, cpu = IMPIREstimator(), CPUEstimator()

        def speedup(size):
            spec = DatabaseSpec.from_size_gib(size)
            return (
                impir.batch_estimate(spec, 32).throughput_qps
                / cpu.batch_estimate(spec, 32).throughput_qps
            )

        assert speedup(8.0) > speedup(2.0) > speedup(0.5)
        assert speedup(0.5) > 1.3
        assert speedup(8.0) > 3.0

    def test_ordering_cpu_gpu_impir_at_one_gib(self):
        """Fig. 12: CPU-PIR < GPU-PIR < IM-PIR on a 1 GB database."""
        impir = IMPIREstimator().batch_estimate(SPEC_1GIB, 32).throughput_qps
        gpu = GPUEstimator().batch_estimate(SPEC_1GIB, 32).throughput_qps
        cpu = CPUEstimator().batch_estimate(SPEC_1GIB, 32).throughput_qps
        assert cpu < gpu < impir


class TestMotivationEstimator:
    def test_fig3_shape(self):
        estimator = MotivationEstimator()
        breakdown = estimator.breakdown(4.0)
        # dpXOR dominates Eval by roughly an order of magnitude; Gen is noise.
        assert breakdown.dpxor_seconds > 5 * breakdown.eval_seconds
        assert breakdown.eval_seconds > 100 * breakdown.gen_seconds
        assert 2.0 < breakdown.total_seconds < 6.0

    def test_scales_linearly(self):
        estimator = MotivationEstimator()
        assert estimator.breakdown(4.0).dpxor_seconds == pytest.approx(
            4 * estimator.breakdown(1.0).dpxor_seconds, rel=0.01
        )
