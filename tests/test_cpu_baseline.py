"""CPU baseline: cache model, cost model and CPU-PIR server."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, MIB
from repro.cpu.cache import CacheModel
from repro.cpu.config import CPU_BASELINE_CONFIG, CPUConfig
from repro.cpu.cpu_pir import CPUPIRServer
from repro.cpu.model import PHASE_DPXOR, PHASE_EVAL, CPUModel
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.server import PIRServer


class TestCPUConfig:
    def test_paper_baseline_machine(self):
        config = CPU_BASELINE_CONFIG
        assert config.total_cores == 32
        assert config.total_threads == 64
        assert config.llc_bytes == 40 * MIB
        assert config.dram_bytes == 128 * GIB

    def test_with_query_threads(self):
        assert CPU_BASELINE_CONFIG.with_query_threads(16).query_threads == 16

    def test_invalid_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(stream_contention_alpha=1.5)


class TestCacheModel:
    @pytest.fixture()
    def cache(self):
        return CacheModel(CPU_BASELINE_CONFIG)

    def test_llc_residency(self, cache):
        assert cache.fits_in_llc(10 * MIB)
        assert not cache.fits_in_llc(100 * MIB)

    def test_llc_resident_scan_is_fast(self, cache):
        resident = cache.streaming_bandwidth(8 * MIB, concurrent_streams=1)
        dram = cache.streaming_bandwidth(1 * GIB, concurrent_streams=1)
        assert resident.served_from_llc
        assert not dram.served_from_llc
        assert resident.per_stream_bandwidth > dram.per_stream_bandwidth

    def test_contention_reduces_aggregate_efficiency(self, cache):
        assert cache.dram_efficiency(32) < cache.dram_efficiency(2) <= 1.0

    def test_per_stream_bandwidth_capped_by_single_thread(self, cache):
        estimate = cache.streaming_bandwidth(1 * GIB, concurrent_streams=1)
        assert estimate.per_stream_bandwidth <= CPU_BASELINE_CONFIG.single_thread_stream_bandwidth

    def test_per_stream_bandwidth_shrinks_with_streams(self, cache):
        alone = cache.streaming_bandwidth(1 * GIB, 1).per_stream_bandwidth
        crowded = cache.streaming_bandwidth(1 * GIB, 32).per_stream_bandwidth
        assert crowded < alone

    def test_scan_seconds_unloaded_ignores_contention(self, cache):
        loaded = cache.scan_seconds(1 * GIB, concurrent_streams=32)
        unloaded = cache.scan_seconds(1 * GIB, concurrent_streams=32, unloaded=True)
        assert unloaded < loaded

    def test_zero_bytes_is_free(self, cache):
        assert cache.scan_seconds(0) == 0.0

    def test_invalid_streams_rejected(self, cache):
        with pytest.raises(ConfigurationError):
            cache.dram_efficiency(0)


class TestCPUModel:
    @pytest.fixture()
    def model(self):
        return CPUModel(CPU_BASELINE_CONFIG)

    def test_eval_scales_with_threads(self, model):
        assert model.dpf_eval_seconds(1 << 24, threads=32) < model.dpf_eval_seconds(1 << 24, threads=1)

    def test_dpxor_scales_with_db(self, model):
        assert model.dpxor_seconds(8 * GIB) > model.dpxor_seconds(1 * GIB)

    def test_single_query_breakdown_is_dpxor_dominant(self, model):
        """The paper's Table 1: CPU-PIR spends >60% of a query in dpXOR."""
        breakdown = model.single_query_breakdown(num_records=(8 * GIB) // 32, record_size=32)
        fractions = breakdown.fractions()
        assert fractions[PHASE_DPXOR] > 0.6
        assert fractions[PHASE_EVAL] < 0.4

    def test_batch_latency_grows_with_db_size(self, model):
        small = model.batch_estimate((GIB) // 32, 32, 32)
        large = model.batch_estimate((8 * GIB) // 32, 32, 32)
        assert large.latency_seconds > small.latency_seconds
        assert large.throughput_qps < small.throughput_qps

    def test_batch_throughput_saturates_with_batch_size(self, model):
        """Once every query thread is busy, more queries do not add throughput."""
        num_records = GIB // 32
        at_32 = model.batch_estimate(num_records, 32, 32).throughput_qps
        at_512 = model.batch_estimate(num_records, 32, 512).throughput_qps
        assert at_512 == pytest.approx(at_32, rel=0.25)

    def test_batch_estimate_bounds_consistent(self, model):
        estimate = model.batch_estimate(GIB // 32, 32, 32)
        assert estimate.latency_seconds >= estimate.compute_bound_seconds
        assert estimate.latency_seconds >= estimate.bandwidth_bound_seconds
        assert estimate.latency_seconds >= estimate.critical_path_seconds

    def test_invalid_batch_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.batch_estimate(100, 32, 0)


class TestCPUPIRServer:
    @pytest.fixture()
    def setup(self, small_db):
        client = PIRClient(small_db.num_records, small_db.record_size, seed=3, prg=make_prg("numpy"))
        server = CPUPIRServer(small_db, server_id=0, prg=make_prg("numpy"))
        return client, server, small_db

    def test_functional_answers_match_reference(self, setup):
        client, server, db = setup
        reference = PIRServer(db, server_id=0, prg=make_prg("numpy"))
        query = client.query(321)[0]
        assert server.answer(query).payload == reference.answer(query).payload

    def test_answer_with_breakdown(self, setup):
        client, server, _ = setup
        result = server.answer_with_breakdown(client.query(5)[0])
        assert result.latency_seconds > 0
        assert result.breakdown.get(PHASE_DPXOR) > 0

    def test_answer_batch(self, setup):
        client, server, db = setup
        queries = [client.query(i)[0] for i in range(4)]
        batch = server.answer_batch(queries)
        assert len(batch.answers) == 4
        assert batch.throughput_qps > 0
        assert batch.latency_seconds > 0

    def test_estimate_helpers_scale(self, setup):
        _, server, _ = setup
        small = server.estimate_batch(GIB // 32, 32, 32)
        large = server.estimate_batch(4 * GIB // 32, 32, 32)
        assert large.latency_seconds > small.latency_seconds
        assert server.estimate_breakdown(GIB // 32, 32).total > 0
