"""Streamed (oversized-database) query evaluation and bulk database updates."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ProtocolError
from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRServer
from repro.core.streaming import PHASE_COPY_DB, StreamedIMPIRServer, streaming_overhead_factor
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.server import PIRServer


@pytest.fixture()
def streamed_setup(small_db):
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))
    server = StreamedIMPIRServer(small_db, config=config, server_id=0, segment_records=200)
    client = PIRClient(small_db.num_records, small_db.record_size, seed=5, prg=make_prg("numpy"))
    return client, server, small_db


class TestStreamedServer:
    def test_multiple_segments_needed(self, streamed_setup):
        _, server, db = streamed_setup
        assert server.num_segments == -(-db.num_records // 200)
        assert server.num_segments > 1

    def test_answers_match_reference(self, streamed_setup):
        client, server, db = streamed_setup
        reference = PIRServer(db, server_id=0, prg=make_prg("numpy"))
        for index in (0, 199, 200, 777, db.num_records - 1):
            query = client.query(index)[0]
            assert server.answer(query).answer.payload == reference.answer(query).payload

    def test_breakdown_includes_db_copy_phase(self, streamed_setup):
        client, server, _ = streamed_setup
        result = server.answer(client.query(3)[0])
        assert result.breakdown.get(PHASE_COPY_DB) > 0
        assert 0.0 < streaming_overhead_factor(result) < 1.0

    def test_streaming_costs_more_than_preloaded(self, small_db):
        """The paper's rationale for preloading: per-query DB transfers dominate."""
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))
        client = PIRClient(small_db.num_records, small_db.record_size, seed=6, prg=make_prg("numpy"))
        query = client.query(11)[0]
        preloaded = IMPIRServer(small_db, config=config, server_id=0).answer(query)
        streamed = StreamedIMPIRServer(small_db, config=config, server_id=0).answer(query)
        assert streamed.latency_seconds > preloaded.latency_seconds

    def test_batch_answers(self, streamed_setup):
        client, server, db = streamed_setup
        queries = [client.query(i)[0] for i in (1, 500, 1000)]
        results = server.answer_batch(queries)
        assert len(results) == 3
        for query_index, result in zip((1, 500, 1000), results):
            assert result.answer.payload == db.record(query_index) or len(result.answer.payload) == 32

    def test_rejects_wrong_server(self, streamed_setup):
        client, server, _ = streamed_setup
        with pytest.raises(ProtocolError):
            server.answer(client.query(0)[1])

    def test_rejects_empty_batch(self, streamed_setup):
        _, server, _ = streamed_setup
        with pytest.raises(ProtocolError):
            server.answer_batch([])

    def test_segment_too_large_for_mram_rejected(self, small_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=2, tasklets=2))
        huge_segment = 2 * (64 * 2**20 // 32) * 2  # far beyond two DPUs' MRAM
        with pytest.raises(CapacityError):
            StreamedIMPIRServer(small_db, config=config, segment_records=huge_segment)

    def test_reconstruction_through_two_streamed_servers(self, small_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))
        client = PIRClient(small_db.num_records, small_db.record_size, seed=8, prg=make_prg("numpy"))
        servers = [
            StreamedIMPIRServer(small_db, config=config, server_id=i, segment_records=300)
            for i in (0, 1)
        ]
        queries = client.query(321)
        answers = [servers[q.server_id].answer(q).answer for q in queries]
        assert client.reconstruct(answers) == small_db.record(321)


class TestBulkUpdates:
    @pytest.fixture()
    def server_and_client(self, small_db, small_impir_config):
        server = IMPIRServer(small_db, config=small_impir_config, server_id=0)
        client = PIRClient(small_db.num_records, small_db.record_size, seed=9, prg=make_prg("numpy"))
        return server, client, small_db

    def test_updates_visible_in_subsequent_queries(self, server_and_client):
        server, client, db = server_and_client
        new_record = bytes(range(32))
        cost = server.apply_updates([(100, new_record)])
        assert cost.get("update_copy") > 0

        # A fresh two-server deployment on the updated content must agree.
        query = client.query(100)[0]
        result = server.answer(query)
        updated_db = db.with_updates([(100, new_record)])
        reference = PIRServer(updated_db, server_id=0, prg=make_prg("numpy"))
        assert result.answer.payload == reference.answer(query).payload

    def test_untouched_records_unchanged(self, server_and_client):
        server, client, db = server_and_client
        server.apply_updates([(5, bytes(32))])
        query = client.query(900)[0]
        reference = PIRServer(db.with_updates([(5, bytes(32))]), server_id=0, prg=make_prg("numpy"))
        assert server.answer(query).answer.payload == reference.answer(query).payload

    def test_empty_update_batch_is_free(self, server_and_client):
        server, _, _ = server_and_client
        assert server.apply_updates([]).total == 0.0

    def test_update_cost_scales_with_dirty_blocks(self, server_and_client):
        server, _, db = server_and_client
        one = server.apply_updates([(0, bytes(32))]).get("update_copy")
        spread_indices = [0, 200, 400, 600, 800, 1000]
        many = server.apply_updates([(i, bytes(32)) for i in spread_indices]).get("update_copy")
        assert many > one

    def test_end_to_end_after_update(self, small_db, small_impir_config):
        from repro.core.impir import IMPIRDeployment

        deployment = IMPIRDeployment(small_db, config=small_impir_config, client_seed=4)
        new_record = b"\x77" * 32
        for server in deployment.servers:
            server.apply_updates([(42, new_record)])
        assert deployment.retrieve(42) == new_record
