"""Length-doubling PRG backends: determinism, structure, statistics."""

import numpy as np
import pytest

from repro.dpf.prf import SEED_BYTES, AESPRG, NumpyPRG, make_prg


class TestFactory:
    def test_numpy_backend(self):
        assert isinstance(make_prg("numpy"), NumpyPRG)
        assert isinstance(make_prg("fast"), NumpyPRG)

    def test_aes_backend(self):
        assert isinstance(make_prg("aes"), AESPRG)
        assert isinstance(make_prg("AES-128"), AESPRG)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_prg("md5")


class TestNumpyPRG:
    def test_deterministic(self):
        seeds = np.arange(4 * SEED_BYTES, dtype=np.uint8).reshape(4, SEED_BYTES)
        a = NumpyPRG().expand(seeds.copy())
        b = NumpyPRG().expand(seeds.copy())
        for left, right in zip(a, b):
            assert np.array_equal(left, right)

    def test_left_and_right_children_differ(self):
        seeds = np.arange(SEED_BYTES, dtype=np.uint8).reshape(1, SEED_BYTES)
        left, right, _, _ = NumpyPRG().expand(seeds)
        assert not np.array_equal(left, right)

    def test_distinct_seeds_give_distinct_children(self):
        rng = np.random.default_rng(0)
        seeds = rng.integers(0, 256, size=(64, SEED_BYTES), dtype=np.uint8)
        left, _, _, _ = NumpyPRG().expand(seeds)
        unique_rows = {row.tobytes() for row in left}
        assert len(unique_rows) == 64

    def test_control_bits_are_bits(self):
        rng = np.random.default_rng(1)
        seeds = rng.integers(0, 256, size=(256, SEED_BYTES), dtype=np.uint8)
        _, _, t_left, t_right = NumpyPRG().expand(seeds)
        assert set(np.unique(t_left)).issubset({0, 1})
        assert set(np.unique(t_right)).issubset({0, 1})

    def test_control_bits_roughly_balanced(self):
        rng = np.random.default_rng(2)
        seeds = rng.integers(0, 256, size=(2048, SEED_BYTES), dtype=np.uint8)
        _, _, t_left, t_right = NumpyPRG().expand(seeds)
        assert 800 < int(t_left.sum()) < 1250
        assert 800 < int(t_right.sum()) < 1250

    def test_output_bytes_look_uniform(self):
        rng = np.random.default_rng(3)
        seeds = rng.integers(0, 256, size=(512, SEED_BYTES), dtype=np.uint8)
        left, right, _, _ = NumpyPRG().expand(seeds)
        mean = float(np.concatenate([left, right]).mean())
        assert 118.0 < mean < 137.0  # uniform bytes average ~127.5

    def test_counter_increments(self):
        prg = NumpyPRG()
        seeds = np.zeros((5, SEED_BYTES), dtype=np.uint8)
        prg.expand(seeds)
        prg.expand(seeds)
        assert prg.expand_calls == 10
        assert prg.blocks_consumed == 20

    def test_reset_counters(self):
        prg = NumpyPRG()
        prg.expand(np.zeros((5, SEED_BYTES), dtype=np.uint8))
        prg.reset_counters()
        assert prg.expand_calls == 0

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            NumpyPRG().expand(np.zeros((1, 8), dtype=np.uint8))

    def test_expand_one_round_trip(self):
        prg = NumpyPRG()
        left, right, t_left, t_right = prg.expand_one(bytes(range(16)))
        assert len(left) == SEED_BYTES and len(right) == SEED_BYTES
        assert t_left in (0, 1) and t_right in (0, 1)


class TestBackendAgreementOnStructure:
    """Both backends implement the same interface contract."""

    @pytest.mark.parametrize("backend", ["numpy", "aes"])
    def test_same_seed_same_output(self, backend):
        prg_a = make_prg(backend)
        prg_b = make_prg(backend)
        seed = np.arange(SEED_BYTES, dtype=np.uint8).reshape(1, SEED_BYTES)
        out_a = prg_a.expand(seed)
        out_b = prg_b.expand(seed)
        assert np.array_equal(out_a[0], out_b[0])
        assert np.array_equal(out_a[1], out_b[1])

    @pytest.mark.parametrize("backend", ["numpy", "aes"])
    def test_blocks_per_expand_constant(self, backend):
        assert make_prg(backend).blocks_per_expand == 2
