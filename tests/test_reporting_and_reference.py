"""Reporting helpers and paper reference constants."""

import pytest

from repro.bench import paper_reference as paper
from repro.bench.figures import fig12_gpu_comparison, fig9_throughput_latency
from repro.bench.reporting import render_fig9, render_fig12, render_speedup


class TestPaperReference:
    def test_table1_rows_are_probability_like(self):
        assert sum(paper.TABLE1_IMPIR.values()) == pytest.approx(1.0, abs=0.01)
        assert sum(paper.TABLE1_CPU.values()) == pytest.approx(1.0, abs=0.01)

    def test_headline_constants_consistent(self):
        assert paper.FIG9_SPEEDUP_AT_8_GIB == paper.HEADLINE_THROUGHPUT_SPEEDUP
        assert paper.FIG9_SPEEDUP_AT_0_5_GIB < paper.FIG9_SPEEDUP_AT_8_GIB

    def test_sweep_constants_match_paper_setup(self):
        assert paper.PAPER_NUM_DPUS == 2048
        assert paper.PAPER_TASKLETS_PER_DPU == 16
        assert paper.PAPER_RECORD_SIZE == 32
        assert paper.PAPER_DEFAULT_BATCH == 32
        assert 8.0 == paper.PAPER_FIG9_DB_SIZES_GIB[-1]
        assert 32.0 == paper.PAPER_FIG10_DB_SIZES_GIB[-1]

    def test_relative_error(self):
        assert paper.relative_error(3.7, 3.7) == 0.0
        assert paper.relative_error(4.0, 2.0) == pytest.approx(1.0)
        assert paper.relative_error(0.0, 0.0) == 0.0
        assert paper.relative_error(1.0, 0.0) == float("inf")


class TestRendering:
    @pytest.fixture(scope="class")
    def fig9(self):
        return fig9_throughput_latency(
            db_sizes_gib=(0.5, 1.0), batch_sizes=(8, 32), batch_for_db_sweep=8
        )

    def test_render_fig9_contains_both_series(self, fig9):
        text = render_fig9(fig9)
        assert "IM-PIR" in text and "CPU-PIR" in text
        assert "paper" in text

    def test_render_speedup_one_liner(self, fig9):
        line = render_speedup(fig9.speedup_vs_db_size)
        assert "min" in line and "max" in line and "x" in line

    def test_render_fig12_small_sweep(self):
        result = fig12_gpu_comparison(db_sizes_gib=(0.5, 1.0), batch_size=8)
        text = render_fig12(result)
        assert "GPU-PIR" in text and "Figure 12" in text
