"""DPU clustering: planning and capacity checks."""

import pytest

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.units import MIB
from repro.pim.cluster import (
    DPUCluster,
    make_clusters,
    max_clusters_for_database,
    plan_clusters,
)
from repro.pim.config import scaled_down_config
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database

MRAM = 64 * MIB


@pytest.fixture()
def dpu_set():
    return UPMEMSystem(scaled_down_config(num_dpus=8, tasklets=2)).allocate()


class TestPlanClusters:
    def test_single_cluster_always_allowed(self):
        db = Database.random(1000, 32, seed=1)
        plan = plan_clusters(2048, 1, db, MRAM)
        assert plan.num_clusters == 1
        assert plan.dpus_per_cluster == 2048
        assert plan.total_dpus == 2048

    def test_per_dpu_bytes_computed(self):
        db = Database.random(4096, 32, seed=1)
        plan = plan_clusters(8, 2, db, MRAM)
        assert plan.dpus_per_cluster == 4
        assert plan.db_bytes_per_dpu == -(-db.size_bytes // 4)

    def test_capacity_violation_raises(self):
        # 8 GB database, 8 clusters of 256 DPUs => 32 MB+ per DPU with only
        # 25% reserve it still fits; push to 64 clusters to overflow.
        db_records = (8 * 1024 * MIB) // 32
        db = Database.random(100, 32, seed=1)  # placeholder content
        # Use a spec-sized fake by monkeypatching size via records count:
        # instead, construct the check directly with a large synthetic size.
        with pytest.raises(CapacityError):
            plan_clusters(
                2048,
                64,
                _FakeSizeDatabase(db, size_bytes=8 * 1024 * MIB),
                MRAM,
            )
        assert db_records > 0

    def test_rejects_more_clusters_than_dpus(self):
        db = Database.random(16, 32, seed=1)
        with pytest.raises(ConfigurationError):
            plan_clusters(4, 8, db, MRAM)

    def test_rejects_zero_clusters(self):
        db = Database.random(16, 32, seed=1)
        with pytest.raises(ConfigurationError):
            plan_clusters(4, 0, db, MRAM)


class _FakeSizeDatabase:
    """Stand-in exposing only ``size_bytes``, for capacity-planning tests."""

    def __init__(self, database, size_bytes):
        self._database = database
        self.size_bytes = size_bytes

    def __getattr__(self, name):
        return getattr(self._database, name)


class TestMakeClusters:
    def test_split_counts(self, dpu_set):
        clusters = make_clusters(dpu_set, 4)
        assert len(clusters) == 4
        assert all(cluster.num_dpus == 2 for cluster in clusters)
        assert [c.cluster_id for c in clusters] == [0, 1, 2, 3]

    def test_cluster_capacity_check(self, dpu_set):
        clusters = make_clusters(dpu_set, 2)
        small = Database.random(128, 32, seed=1)
        assert clusters[0].can_hold(small)
        assert clusters[0].mram_capacity_bytes == 4 * MRAM

    def test_can_hold_respects_reserve(self, dpu_set):
        cluster = make_clusters(dpu_set, 8)[0]  # one DPU
        big = _FakeSizeDatabase(Database.random(4, 32, seed=1), size_bytes=60 * MIB)
        assert not cluster.can_hold(big)

    def test_cluster_is_dpucluster(self, dpu_set):
        assert all(isinstance(c, DPUCluster) for c in make_clusters(dpu_set, 2))


class TestMaxClusters:
    def test_small_database_allows_many_clusters(self):
        db = Database.random(1024, 32, seed=1)
        assert max_clusters_for_database(2048, db, MRAM, limit=8) == 8

    def test_huge_database_limits_clusters(self):
        huge = _FakeSizeDatabase(
            Database.random(4, 32, seed=1), size_bytes=90 * 1024 * MIB
        )
        # 90 GB across 2,048 DPUs (48 MB usable each) only fits once: any split
        # into >= 2 clusters overflows per-DPU MRAM.
        assert max_clusters_for_database(2048, huge, MRAM) == 1
