"""Pure-Python AES-128 correctness (FIPS-197 / NIST known-answer tests)."""

import numpy as np
import pytest

from repro.dpf.prf import SEED_BYTES, AESPRG, aes128_encrypt_block


class TestKnownAnswers:
    def test_fips197_appendix_c1(self):
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_nist_sp800_38a_ecb_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_all_zero_key_and_block(self):
        # Well-known AES-128(0, 0) value.
        expected = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        assert aes128_encrypt_block(bytes(16), bytes(16)) == expected


class TestBlockInterface:
    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"short", bytes(16))

    def test_rejects_short_block(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(bytes(16), b"short")

    def test_deterministic(self):
        key, block = bytes(range(16)), bytes(range(16, 32))
        assert aes128_encrypt_block(key, block) == aes128_encrypt_block(key, block)

    def test_key_sensitivity(self):
        block = bytes(16)
        out1 = aes128_encrypt_block(bytes(16), block)
        out2 = aes128_encrypt_block(bytes([1]) + bytes(15), block)
        assert out1 != out2

    def test_output_length(self):
        assert len(aes128_encrypt_block(bytes(16), bytes(16))) == 16


class TestAESPRG:
    def test_expand_shapes(self):
        prg = AESPRG()
        seeds = np.arange(2 * SEED_BYTES, dtype=np.uint8).reshape(2, SEED_BYTES)
        left, right, t_left, t_right = prg.expand(seeds)
        assert left.shape == (2, SEED_BYTES)
        assert right.shape == (2, SEED_BYTES)
        assert t_left.shape == (2,)
        assert t_right.shape == (2,)

    def test_children_match_direct_aes(self):
        prg = AESPRG()
        seed = bytes(range(16))
        left, right, _, _ = prg.expand(np.frombuffer(seed, dtype=np.uint8).reshape(1, 16))
        assert left[0].tobytes() == aes128_encrypt_block(seed, bytes(16))
        assert right[0].tobytes() == aes128_encrypt_block(seed, bytes([1] + [0] * 15))

    def test_counter_increments(self):
        prg = AESPRG()
        seeds = np.zeros((3, SEED_BYTES), dtype=np.uint8)
        prg.expand(seeds)
        assert prg.expand_calls == 3
        assert prg.blocks_consumed == 6

    def test_expand_one(self):
        prg = AESPRG()
        left, right, t_left, t_right = prg.expand_one(bytes(16))
        assert len(left) == 16 and len(right) == 16
        assert t_left in (0, 1) and t_right in (0, 1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AESPRG().expand(np.zeros((2, 8), dtype=np.uint8))
