"""DPU memory models: MRAM buffers and WRAM reservations."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, TransferError
from repro.pim.mram import MRAM
from repro.pim.wram import WRAM


class TestMRAMAllocation:
    def test_allocate_and_account(self):
        mram = MRAM(1024)
        mram.allocate("db", 512)
        assert mram.used_bytes == 512
        assert mram.free_bytes == 512
        assert mram.has_buffer("db")

    def test_over_allocation_rejected(self):
        mram = MRAM(1024)
        mram.allocate("db", 1000)
        with pytest.raises(CapacityError):
            mram.allocate("extra", 100)

    def test_duplicate_name_rejected(self):
        mram = MRAM(1024)
        mram.allocate("db", 10)
        with pytest.raises(CapacityError):
            mram.allocate("db", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(CapacityError):
            MRAM(1024).allocate("x", 0)

    def test_free_releases_capacity(self):
        mram = MRAM(1024)
        mram.allocate("db", 512)
        mram.free("db")
        assert mram.used_bytes == 0
        assert not mram.has_buffer("db")

    def test_free_unknown_buffer(self):
        with pytest.raises(TransferError):
            MRAM(64).free("nope")

    def test_buffer_names(self):
        mram = MRAM(1024)
        mram.allocate("a", 1)
        mram.allocate("b", 1)
        assert mram.buffer_names() == ("a", "b")


class TestMRAMDataMovement:
    def test_write_read_round_trip(self):
        mram = MRAM(256)
        mram.allocate("buf", 64)
        data = np.arange(64, dtype=np.uint8)
        assert mram.write("buf", data) == 64
        assert np.array_equal(mram.read("buf"), data)

    def test_partial_write_with_offset(self):
        mram = MRAM(256)
        mram.allocate("buf", 16)
        mram.write("buf", np.full(4, 9, dtype=np.uint8), offset=4)
        out = mram.read("buf")
        assert list(out[4:8]) == [9, 9, 9, 9]
        assert list(out[:4]) == [0, 0, 0, 0]

    def test_write_overflow_rejected(self):
        mram = MRAM(256)
        mram.allocate("buf", 8)
        with pytest.raises(TransferError):
            mram.write("buf", np.zeros(16, dtype=np.uint8))

    def test_read_overflow_rejected(self):
        mram = MRAM(256)
        mram.allocate("buf", 8)
        with pytest.raises(TransferError):
            mram.read("buf", offset=4, size_bytes=8)

    def test_read_unknown_buffer(self):
        with pytest.raises(TransferError):
            MRAM(64).read("ghost")

    def test_unwritten_buffer_reads_zeros(self):
        mram = MRAM(64)
        mram.allocate("buf", 8)
        assert np.array_equal(mram.read("buf"), np.zeros(8, dtype=np.uint8))

    def test_2d_array_flattened(self):
        mram = MRAM(256)
        mram.allocate("buf", 32)
        mram.write("buf", np.arange(32, dtype=np.uint8).reshape(4, 8))
        assert np.array_equal(mram.read("buf"), np.arange(32, dtype=np.uint8))


class TestWRAM:
    def test_reserve_and_release(self):
        wram = WRAM(1024)
        wram.reserve("stage", 512)
        assert wram.used_bytes == 512
        wram.release("stage")
        assert wram.used_bytes == 0

    def test_overflow_rejected(self):
        wram = WRAM(64 * 1024)
        wram.reserve("a", 60 * 1024)
        with pytest.raises(CapacityError):
            wram.reserve("b", 8 * 1024)

    def test_duplicate_rejected(self):
        wram = WRAM(1024)
        wram.reserve("a", 10)
        with pytest.raises(CapacityError):
            wram.reserve("a", 10)

    def test_release_all(self):
        wram = WRAM(1024)
        wram.reserve("a", 10)
        wram.reserve("b", 10)
        wram.release_all()
        assert wram.used_bytes == 0

    def test_fits(self):
        wram = WRAM(100)
        assert wram.fits(100)
        assert not wram.fits(101)
        assert not wram.fits(0)

    def test_release_missing_is_noop(self):
        WRAM(10).release("ghost")

    def test_branch_parallel_working_set_does_not_fit(self):
        """The paper's §3.2 argument: a 64 KB WRAM cannot hold the per-leaf
        path state a branch-parallel DPF evaluation would need for a realistic
        per-DPU block (e.g. 2^21 leaves x 17 bytes of node state)."""
        wram = WRAM(64 * 1024)
        branch_parallel_working_set = (2**21) * 17
        assert not wram.fits(branch_parallel_working_set)
