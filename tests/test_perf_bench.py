"""The PR 6/7 perf tooling: bench harness, history archive, diff tool, lints."""

import importlib.util
import json
import os
import sys
from pathlib import Path

import pytest

from repro.bench.perf import (
    archive_metrics,
    bench_tag,
    dpu_pipeline_model,
    render_bench,
    run_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        f"tools_{name}", REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRunBench:
    def test_quick_mode_structure_and_assertion(self, tmp_path):
        out = tmp_path / "bench.json"
        metrics = run_bench(quick=True, output_path=str(out))
        assert metrics["mode"] == "quick"
        wall = metrics["wall_clock"]
        # Quick mode only returns if its internal batched >= sequential
        # assertion held.
        assert wall["batched_vs_sequential_speedup"] >= 1.0
        assert wall["records_per_second"] > 0
        simulated = metrics["simulated_impir"]
        assert 0 < simulated["p50_latency_seconds"] <= simulated["p99_latency_seconds"]
        written = json.loads(out.read_text())
        assert written["shape"]["backend"] == "reference"
        assert written["wall_clock"]["batched_seconds"] > 0

    def test_render_mentions_speedup_and_percentiles(self):
        metrics = run_bench(quick=True, output_path=None)
        text = render_bench(metrics)
        assert "speedup" in text
        assert "p50" in text and "p99" in text
        assert "records/s" in text

    def test_simulated_percentiles_are_deterministic(self):
        first = run_bench(quick=True, output_path=None)["simulated_impir"]
        second = run_bench(quick=True, output_path=None)["simulated_impir"]
        assert first == second


class TestBenchArchive:
    def test_bench_tag_is_a_short_nonempty_token(self):
        tag = bench_tag()
        assert tag and " " not in tag

    def test_archive_metrics_writes_a_tagged_artifact(self, tmp_path):
        history = tmp_path / "history"
        path = archive_metrics({"a": 1}, str(history), tag="abc123")
        assert path == str(history / "BENCH_abc123.json")
        written = json.loads(Path(path).read_text())
        assert written == {"a": 1, "tag": "abc123"}

    def test_run_bench_archives_into_history_dir(self, tmp_path):
        history = tmp_path / "history"
        metrics = run_bench(
            quick=True, output_path=None, history_dir=str(history), tag="t1"
        )
        archived = Path(metrics["archived_to"])
        assert archived == history / "BENCH_t1.json"
        payload = json.loads(archived.read_text())
        assert payload["tag"] == "t1"
        # The archived payload is the pre-archive snapshot: no self-reference.
        assert "archived_to" not in payload
        assert payload["wall_clock"] == metrics["wall_clock"]


def _write_history(tmp_path, runs):
    """Write tagged quick-shaped artifacts with strictly increasing mtimes."""
    history = tmp_path / "history"
    history.mkdir()
    for order, (tag, qps) in enumerate(runs):
        payload = {
            "tag": tag,
            "wall_clock": {
                "batched_qps": qps,
                "batched_vs_sequential_speedup": 2.0,
                "records_per_second": qps * 100,
            },
            "simulated_impir": {
                "p50_latency_seconds": 1e-4,
                "p99_latency_seconds": 2e-4,
            },
        }
        path = history / f"BENCH_{tag}.json"
        path.write_text(json.dumps(payload))
        stamp = 1_000_000_000 + order
        os.utime(path, (stamp, stamp))
    return history


class TestBenchTrajectory:
    def test_load_history_orders_by_mtime_and_labels_by_tag(self, tmp_path):
        compare = _load_tool("bench_compare")
        history = _write_history(tmp_path, [("new", 900.0), ("old", 400.0)])
        # "old" was written second, so it is the newest run despite its name.
        loaded = compare.load_history(str(history))
        assert [label for label, _ in loaded] == ["new", "old"]
        assert loaded[0][1]["wall_clock.batched_qps"] == 900.0

    def test_render_trajectory_one_row_per_run(self, tmp_path):
        compare = _load_tool("bench_compare")
        history = _write_history(tmp_path, [("aaa", 400.0), ("bbb", 900.0)])
        text = compare.render_trajectory(compare.load_history(str(history)))
        lines = text.splitlines()
        assert "batched q/s" in lines[0] and "p99 us" in lines[0]
        assert lines[1].startswith("aaa") and lines[2].startswith("bbb")
        assert "900.00" in lines[2]

    def test_main_directory_mode_prints_trajectory_and_full_diff(
        self, tmp_path, capsys
    ):
        compare = _load_tool("bench_compare")
        history = _write_history(tmp_path, [("first", 400.0), ("last", 900.0)])
        assert compare.main([str(history)]) == 0
        out = capsys.readouterr().out
        assert "first" in out and "last" in out
        assert "full diff, first -> last:" in out
        assert "+125.0%" in out  # 400 -> 900 qps

    def test_main_empty_directory_is_an_error(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        empty = tmp_path / "empty"
        empty.mkdir()
        assert compare.main([str(empty)]) == 1
        assert "no BENCH_" in capsys.readouterr().err


class TestBenchCompare:
    def test_flatten_and_compare(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        old = {"a": {"x": 2.0, "y": 4}, "label": "text", "ok": True}
        new = {"a": {"x": 3.0, "y": 4}, "extra": 1}
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))

        flat = compare.flatten_numeric(old)
        assert flat == {"a.x": 2.0, "a.y": 4.0}  # strings/bools are not metrics

        assert compare.main([str(old_path), str(new_path)]) == 0
        text = capsys.readouterr().out
        assert "+50.0%" in text
        assert "added" in text

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        assert compare.main([str(tmp_path / "nope.json"), str(tmp_path / "x")]) == 2

    def _write_pair(self, tmp_path, old, new):
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        return str(old_path), str(new_path)

    def test_mismatched_shape_warns_on_stderr(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        old_path, new_path = self._write_pair(
            tmp_path,
            {"shape": {"num_records": 1024}, "wall_clock": {"qps": 1.0}},
            {"shape": {"num_records": 4096}, "wall_clock": {"qps": 2.0}},
        )
        assert compare.main([old_path, new_path]) == 0
        captured = capsys.readouterr()
        assert "shape context differs" in captured.err
        assert "+100.0%" in captured.out  # the diff still prints

    def test_mismatched_hardware_warns_on_stderr(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        old_path, new_path = self._write_pair(
            tmp_path,
            {"hardware": {"cpu_count": 1}, "wall_clock": {"qps": 1.0}},
            {"hardware": {"cpu_count": 64}, "wall_clock": {"qps": 2.0}},
        )
        assert compare.main([old_path, new_path]) == 0
        assert "hardware context differs" in capsys.readouterr().err

    def test_matching_context_stays_silent(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        context = {"shape": {"num_records": 1024}, "hardware": {"cpu_count": 2}}
        old_path, new_path = self._write_pair(
            tmp_path,
            dict(context, wall_clock={"qps": 1.0}),
            dict(context, wall_clock={"qps": 2.0}),
        )
        assert compare.main([old_path, new_path]) == 0
        assert capsys.readouterr().err == ""

    def test_missing_hardware_section_on_one_side_warns(self, tmp_path, capsys):
        # Old artifacts predate the hardware section; comparing against a new
        # run should say so rather than silently diffing.
        compare = _load_tool("bench_compare")
        old_path, new_path = self._write_pair(
            tmp_path,
            {"wall_clock": {"qps": 1.0}},
            {"hardware": {"cpu_count": 2}, "wall_clock": {"qps": 2.0}},
        )
        assert compare.main([old_path, new_path]) == 0
        assert "hardware context differs" in capsys.readouterr().err


class TestVectorizedScanLint:
    def _check(self, tmp_path, relative, source):
        lint = _load_tool("lint")
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint.check_file(path)

    @pytest.mark.parametrize("package", ["pir", "core"])
    def test_per_record_loop_flagged(self, tmp_path, package):
        findings = self._check(
            tmp_path,
            f"src/repro/{package}/scan.py",
            "def scan(num_records):\n"
            "    total = 0\n"
            "    for i in range(num_records):\n"
            "        total += i\n"
            "    return total\n",
        )
        assert any("per-record Python loop" in message for _, message in findings)

    def test_attribute_bound_flagged(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/pir/scan.py",
            "def scan(db):\n"
            "    for i in range(db.num_records):\n"
            "        pass\n",
        )
        assert any("per-record Python loop" in message for _, message in findings)

    def test_chunked_range_is_legal(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/pir/scan.py",
            "def scan(num_records, chunk):\n"
            "    for start in range(0, num_records, chunk):\n"
            "        pass\n",
        )
        assert not findings

    def test_other_packages_unaffected(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/bench/scan.py",
            "def scan(num_records):\n"
            "    for i in range(num_records):\n"
            "        pass\n",
        )
        assert not findings

    def test_noqa_suppresses(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/core/scan.py",
            "def scan(num_records):\n"
            "    for i in range(num_records):  # noqa\n"
            "        pass\n",
        )
        assert not findings

    def test_repo_source_is_clean(self):
        lint = _load_tool("lint")
        total = []
        for path in lint.iter_python_files([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]):
            total.extend(lint.check_file(path))
        assert total == []


class TestBatchedScanLint:
    def _check(self, tmp_path, relative, source):
        lint = _load_tool("lint")
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint.check_file(path)

    @pytest.mark.parametrize("package", ["shard", "pim"])
    @pytest.mark.parametrize("bound", ["batch", "batch_size"])
    def test_per_query_batch_loop_flagged(self, tmp_path, package, bound):
        findings = self._check(
            tmp_path,
            f"src/repro/{package}/scan.py",
            f"def scan({bound}):\n"
            f"    for i in range({bound}):\n"
            "        pass\n",
        )
        assert any(
            "per-query Python loop" in message for _, message in findings
        )

    def test_attribute_bound_flagged(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/pim/scan.py",
            "def scan(job):\n"
            "    for i in range(job.batch_size):\n"
            "        pass\n",
        )
        assert any(
            "per-query Python loop" in message for _, message in findings
        )

    def test_chunked_range_is_legal(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/shard/scan.py",
            "def scan(batch, chunk):\n"
            "    for start in range(0, batch, chunk):\n"
            "        pass\n",
        )
        assert not findings

    def test_other_packages_unaffected(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/bench/scan.py",
            "def scan(batch):\n"
            "    for i in range(batch):\n"
            "        pass\n",
        )
        assert not findings

    def test_noqa_suppresses(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/shard/scan.py",
            "def scan(batch):\n"
            "    for i in range(batch):  # noqa\n"
            "        pass\n",
        )
        assert not findings


class TestPrintLint:
    def _check(self, tmp_path, relative, source):
        lint = _load_tool("lint")
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint.check_file(path)

    def test_print_flagged_in_library_code(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/obs/report.py",
            "def report(value):\n    print(value)\n",
        )
        assert any("bare print()" in message for _, message in findings)

    @pytest.mark.parametrize("basename", ["cli.py", "__main__.py"])
    def test_cli_entry_points_exempt(self, tmp_path, basename):
        findings = self._check(
            tmp_path,
            f"src/repro/bench/{basename}",
            "def main():\n    print('ok')\n",
        )
        assert not findings

    def test_non_repro_packages_unaffected(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/other/mod.py",
            "def show(value):\n    print(value)\n",
        )
        assert not findings

    def test_noqa_suppresses(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/obs/report.py",
            "def report(value):\n    print(value)  # noqa\n",
        )
        assert not findings


class TestEventLoopClockLint:
    """``loop.time()`` is a wall clock in disguise; banned where clocks are injected."""

    def _check(self, tmp_path, relative, source):
        lint = _load_tool("lint")
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint.check_file(path)

    @pytest.mark.parametrize("package", ["control", "shard"])
    def test_direct_loop_time_flagged(self, tmp_path, package):
        findings = self._check(
            tmp_path,
            f"src/repro/{package}/driver.py",
            "import asyncio\n"
            "\n"
            "\n"
            "def now():\n"
            "    return asyncio.get_running_loop().time()\n",
        )
        assert any("event-loop clock" in message for _, message in findings)

    @pytest.mark.parametrize("getter", ["get_running_loop", "get_event_loop"])
    def test_aliased_loop_time_flagged(self, tmp_path, getter):
        findings = self._check(
            tmp_path,
            "src/repro/control/driver.py",
            "import asyncio\n"
            "\n"
            "\n"
            "def now():\n"
            f"    loop = asyncio.{getter}()\n"
            "    return loop.time()\n",
        )
        assert any("event-loop clock" in message for _, message in findings)

    def test_other_packages_may_read_the_loop_clock(self, tmp_path):
        # The asyncio frontend legitimately schedules flush deadlines off the
        # loop clock; only the simulated-clock packages are restricted.
        findings = self._check(
            tmp_path,
            "src/repro/pir/async_frontend.py",
            "import asyncio\n"
            "\n"
            "\n"
            "def deadline(wait):\n"
            "    return asyncio.get_running_loop().time() + wait\n",
        )
        assert not findings

    def test_noqa_suppresses(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/control/driver.py",
            "import asyncio\n"
            "\n"
            "\n"
            "def now():\n"
            "    return asyncio.get_running_loop().time()  # noqa\n",
        )
        assert not findings


class TestBackendSurveyAndDpuModel:
    def test_quick_metrics_include_survey_and_pipeline_rows(self):
        metrics = run_bench(quick=True, output_path=None)

        survey = metrics["backend_survey"]
        assert [row["backend"] for row in survey] == [
            "reference",
            "sharded",
            "im-pir-streamed",
        ]
        assert survey[0]["cores"] == 1
        for row in survey:
            assert row["records_per_second"] > 0
            assert row["records_per_second_per_core"] == pytest.approx(
                row["records_per_second"] / row["cores"]
            )

        pipeline = metrics["dpu_pipeline"]
        assert [(row["backend"], row["num_dpus"]) for row in pipeline] == [
            ("im-pir", 8),
            ("im-pir-streamed", 4),
        ]
        stage_keys = {
            "broadcast_seconds",
            "launch_seconds",
            "kernel_seconds",
            "gather_seconds",
            "fold_seconds",
        }
        for row in pipeline:
            assert row["records_per_second_per_dpu"] > 0
            assert set(row["stages"]) == stage_keys
            assert row["per_query_seconds"] == pytest.approx(
                sum(row["stages"].values())
            )

        text = render_bench(metrics)
        assert "backend survey" in text
        assert "DPU pipeline cost model" in text

    def test_dpu_pipeline_model_is_deterministic(self):
        assert dpu_pipeline_model(2048, 64) == dpu_pipeline_model(2048, 64)

    def test_dpu_pipeline_batched_view_amortizes(self):
        for row in dpu_pipeline_model(2048, 64, batch_size=16):
            batched = row["batched"]
            assert batched["batch_size"] == 16
            # Fixed per-dispatch charges amortise; per-row work never does,
            # so the per-query cost drops but stays above the kernel+fold floor.
            assert batched["per_query_seconds"] < row["per_query_seconds"]
            floor = (
                row["stages"]["kernel_seconds"] + row["stages"]["fold_seconds"]
            )
            assert batched["per_query_seconds"] > floor
            assert batched["amortized_speedup"] > 1.0


class TestCrossoverSweep:
    def test_quick_metrics_include_sweep_and_hardware(self):
        metrics = run_bench(quick=True, output_path=None)

        hardware = metrics["hardware"]
        assert hardware["cpu_count"] >= 1
        assert hardware["numpy_version"]
        assert isinstance(hardware["thread_env"], dict)

        sweep = metrics["crossover_sweep"]
        grid = sweep["grid"]
        seen = {(row["num_shards"], row["executor"]) for row in grid}
        assert seen == {
            (shards, executor)
            for shards in (1, 2, 4)
            for executor in ("serial", "threads")
        }
        for row in grid:
            assert row["scan_seconds"] > 0
            assert row["records_per_second"] > 0

        calibrations = sweep["scan_tuner"]
        assert calibrations, "the sweep must record at least one calibration"
        for calibration in calibrations:
            assert calibration["executor"] in ("serial", "threads")
            assert calibration["num_workers"] >= 2
            assert calibration["threads_speedup"] > 0

        text = render_bench(metrics)
        assert "crossover sweep" in text
        assert "tuner verdict" in text
