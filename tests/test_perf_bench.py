"""The PR 6 perf tooling: bench harness, JSON diff tool, vectorised-scan lint."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench.perf import render_bench, run_bench

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        f"tools_{name}", REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRunBench:
    def test_quick_mode_structure_and_assertion(self, tmp_path):
        out = tmp_path / "bench.json"
        metrics = run_bench(quick=True, output_path=str(out))
        assert metrics["mode"] == "quick"
        wall = metrics["wall_clock"]
        # Quick mode only returns if its internal batched >= sequential
        # assertion held.
        assert wall["batched_vs_sequential_speedup"] >= 1.0
        assert wall["records_per_second"] > 0
        simulated = metrics["simulated_impir"]
        assert 0 < simulated["p50_latency_seconds"] <= simulated["p99_latency_seconds"]
        written = json.loads(out.read_text())
        assert written["shape"]["backend"] == "reference"
        assert written["wall_clock"]["batched_seconds"] > 0

    def test_render_mentions_speedup_and_percentiles(self):
        metrics = run_bench(quick=True, output_path=None)
        text = render_bench(metrics)
        assert "speedup" in text
        assert "p50" in text and "p99" in text
        assert "records/s" in text

    def test_simulated_percentiles_are_deterministic(self):
        first = run_bench(quick=True, output_path=None)["simulated_impir"]
        second = run_bench(quick=True, output_path=None)["simulated_impir"]
        assert first == second


class TestBenchCompare:
    def test_flatten_and_compare(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        old = {"a": {"x": 2.0, "y": 4}, "label": "text", "ok": True}
        new = {"a": {"x": 3.0, "y": 4}, "extra": 1}
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))

        flat = compare.flatten_numeric(old)
        assert flat == {"a.x": 2.0, "a.y": 4.0}  # strings/bools are not metrics

        assert compare.main([str(old_path), str(new_path)]) == 0
        text = capsys.readouterr().out
        assert "+50.0%" in text
        assert "added" in text

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        compare = _load_tool("bench_compare")
        assert compare.main([str(tmp_path / "nope.json"), str(tmp_path / "x")]) == 2


class TestVectorizedScanLint:
    def _check(self, tmp_path, relative, source):
        lint = _load_tool("lint")
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint.check_file(path)

    @pytest.mark.parametrize("package", ["pir", "core"])
    def test_per_record_loop_flagged(self, tmp_path, package):
        findings = self._check(
            tmp_path,
            f"src/repro/{package}/scan.py",
            "def scan(num_records):\n"
            "    total = 0\n"
            "    for i in range(num_records):\n"
            "        total += i\n"
            "    return total\n",
        )
        assert any("per-record Python loop" in message for _, message in findings)

    def test_attribute_bound_flagged(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/pir/scan.py",
            "def scan(db):\n"
            "    for i in range(db.num_records):\n"
            "        pass\n",
        )
        assert any("per-record Python loop" in message for _, message in findings)

    def test_chunked_range_is_legal(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/pir/scan.py",
            "def scan(num_records, chunk):\n"
            "    for start in range(0, num_records, chunk):\n"
            "        pass\n",
        )
        assert not findings

    def test_other_packages_unaffected(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/bench/scan.py",
            "def scan(num_records):\n"
            "    for i in range(num_records):\n"
            "        pass\n",
        )
        assert not findings

    def test_noqa_suppresses(self, tmp_path):
        findings = self._check(
            tmp_path,
            "src/repro/core/scan.py",
            "def scan(num_records):\n"
            "    for i in range(num_records):  # noqa\n"
            "        pass\n",
        )
        assert not findings

    def test_repo_source_is_clean(self):
        lint = _load_tool("lint")
        total = []
        for path in lint.iter_python_files([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]):
            total.extend(lint.check_file(path))
        assert total == []
