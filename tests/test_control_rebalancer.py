"""Online rebalancing: heat-driven migration, edge plans, live equivalence."""

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.control.plane import ControlPlane, controlled_fleet
from repro.control.rebalancer import Rebalancer
from repro.control.telemetry import HeatTracker
from repro.dpf.prf import make_prg
from repro.obs import HealthSignal
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard.backend import ShardedBackend, bare_backend_factory
from repro.shard.fleet import FleetRouter, heats_from_trace
from repro.shard.plan import ShardPlan
from repro.workloads.traces import zipf_trace


def make_client(database, seed=61):
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def make_router(database, plan, heats, seed=61, **kwargs):
    return FleetRouter(
        make_client(database, seed=seed),
        database,
        plan,
        heats,
        policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
        **kwargs,
    )


class TestHeatDrivenMigration:
    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(128, 16, seed=71)

    def test_hot_shard_migrates_to_preloaded_and_back(self, database):
        plan = ShardPlan.uniform(database.num_records, 4)
        router = make_router(database, plan, heats=[50.0, 0.0, 0.0, 0.0])
        assert router.placement_kinds() == [
            "im-pir", "im-pir-streamed", "im-pir-streamed", "im-pir-streamed"
        ]
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker, interval_seconds=1.0)

        # Traffic drifts to the last shard; the first goes quiet.
        tracker.observe_batch([120] * 20, now=0.0)
        report = rebalancer.rebalance(now=0.0)
        kinds = {m.shard.index: (m.old_kind, m.new_kind) for m in report.migrations}
        assert kinds[0] == ("im-pir", "im-pir-streamed")  # cooled off
        assert kinds[3] == ("im-pir-streamed", "im-pir")  # newly hot
        assert router.placement_kinds() == [
            "im-pir-streamed", "im-pir-streamed", "im-pir-streamed", "im-pir"
        ]
        # Retrievals after the swap are still bit-exact on every shard.
        indices = [0, 40, 70, 100, 120]
        assert router.retrieve_batch(indices) == [database.record(i) for i in indices]

    def test_migration_cost_is_the_placement_transfer_term(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[0.0, 0.0])
        tracker = HeatTracker(plan)
        tracker.observe_batch([0] * 30, now=0.0)
        report = Rebalancer(router, tracker).rebalance(now=0.0)
        (migration,) = report.migrations
        placement = next(
            p for p in router.placements if p.shard.index == migration.shard.index
        )
        assert migration.new_kind == "im-pir"
        assert migration.transfer_seconds == placement.preload_seconds > 0
        assert report.migration_seconds == migration.transfer_seconds

    def test_migration_updates_the_routers_kind_map(self, database):
        """A migrations-only pass must land the new kinds in the router's
        live kind map: a later re-prepare rebuilds children through the
        default factory, which must follow the migrated placements."""
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[50.0, 0.0])
        tracker = HeatTracker(plan)
        tracker.observe_batch([120] * 30, now=0.0)  # heat drifts to shard 1
        report = Rebalancer(router, tracker).rebalance(now=0.0)
        assert report.migrations and report.topology is None
        fleet = router.fleets[0]
        fleet.backend.prepare(fleet.database)
        member_kinds = [
            child.capabilities().name for _, child in fleet.backend.members
        ]
        assert member_kinds == router.placement_kinds()
        assert member_kinds == ["im-pir-streamed", "im-pir"]

    def test_no_migration_when_placement_is_stable(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[50.0, 0.0])
        tracker = HeatTracker(plan)
        tracker.observe_batch([0] * 50, now=0.0)  # same shape as the seed heats
        report = Rebalancer(router, tracker).rebalance(now=0.0)
        assert report.migrations == []
        assert "unchanged" in report.describe()

    def test_maybe_rebalance_anchors_then_respects_interval(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[50.0, 0.0])
        tracker = HeatTracker(plan)
        rebalancer = Rebalancer(router, tracker, interval_seconds=1.0)
        assert rebalancer.maybe_rebalance(0.0) is None  # anchors only
        assert rebalancer.maybe_rebalance(0.5) is None  # too soon
        assert rebalancer.maybe_rebalance(1.0) is not None
        assert rebalancer.maybe_rebalance(1.5) is None  # interval restarts
        assert len(rebalancer.reports) == 1

    def test_validation(self, database):
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan)
        with pytest.raises(ConfigurationError):
            Rebalancer(router, tracker, interval_seconds=0.0)
        other_plan = ShardPlan.uniform(database.num_records, 2)
        with pytest.raises(ConfigurationError):
            Rebalancer(router, HeatTracker(other_plan))  # not the router's plan


class TestMigrationEdgeCases:
    def test_single_shard_plan_migrates_to_and_from(self):
        database = Database.random(64, 8, seed=72)
        plan = ShardPlan.uniform(database.num_records, 1)
        router = make_router(database, plan, heats=[0.0])
        assert router.placement_kinds() == ["im-pir-streamed"]
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker)

        tracker.observe_batch([0] * 40, now=0.0)
        report = rebalancer.rebalance(now=0.0)
        assert [m.new_kind for m in report.migrations] == ["im-pir"]
        assert router.retrieve_batch([0, 63]) == [database.record(0), database.record(63)]

        tracker.advance(8.0)  # traffic stops; the heat decays back to ~0
        report = rebalancer.rebalance(now=8.0)
        assert [m.new_kind for m in report.migrations] == ["im-pir-streamed"]
        assert router.retrieve_batch([5]) == [database.record(5)]

    def test_more_shards_than_records(self):
        database = Database.random(2, 8, seed=73)
        plan = ShardPlan.uniform(database.num_records, 5)
        router = make_router(database, plan, heats=[0.0] * 5)
        tracker = HeatTracker(plan)
        tracker.observe_batch([0, 0, 0, 1], now=0.0)
        report = Rebalancer(router, tracker).rebalance(now=0.0)
        # Only the two non-empty shards are placeable/migratable.
        assert len(report.placements) == 2
        assert all(m.shard.num_records > 0 for m in report.migrations)
        assert router.retrieve_batch([0, 1]) == [database.record(0), database.record(1)]

    def test_apply_updates_mid_window_on_a_migrating_shard(self):
        database = Database.random(64, 8, seed=74)
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[0.0, 0.0])
        tracker = HeatTracker(plan, window_seconds=10.0)
        rebalancer = Rebalancer(router, tracker)

        # Mid-window: shard 1 is heating up but no rebalance has run yet.
        tracker.observe_batch([40] * 20, now=0.5)
        new_record = bytes(8)
        router.apply_updates([(40, new_record)])

        # The migration must stand the new child up from the *updated*
        # database slice, not a stale prepare-time snapshot.
        report = rebalancer.rebalance(now=1.0)
        assert any(m.shard.index == 1 and m.new_kind == "im-pir" for m in report.migrations)
        assert router.retrieve_batch([40]) == [new_record]

        # And an update landing *after* the swap reaches the migrated child.
        newer_record = bytes(range(8))
        router.apply_updates([(40, newer_record)])
        assert router.retrieve_batch([40, 0]) == [newer_record, database.record(0)]

    def test_swap_child_rejects_unknown_or_unprepared(self):
        database = Database.random(64, 8, seed=75)
        plan = ShardPlan.uniform(database.num_records, 2)
        backend = ShardedBackend(bare_backend_factory("reference"), plan=plan)
        with pytest.raises(ProtocolError):
            backend.swap_child(0, bare_backend_factory("reference")(plan.shards[0]))
        backend.prepare(database)
        with pytest.raises(ConfigurationError):
            backend.swap_child(9, bare_backend_factory("reference")(plan.shards[0]))


class TestLiveEquivalence:
    def test_bit_identical_records_across_live_rebalance_under_drift(self):
        """The acceptance property: a controlled fleet under a drifting Zipf
        workload returns byte-for-byte the records of a static fleet."""
        database = Database.random(128, 8, seed=76)
        plan = ShardPlan.uniform(database.num_records, 4)
        first, last = plan.shards[0], plan.shards[-1]
        half = 32
        skew = zipf_trace(database.num_records, 2 * half, exponent=1.4, seed=77)
        offsets = [first.start] * half + [last.start] * half
        stream = [
            (offset + index) % database.num_records
            for offset, index in zip(offsets, skew)
        ]
        seed_heats = heats_from_trace(plan, stream[:half])

        static = make_router(database, plan, seed_heats, seed=62)
        static_records = static.retrieve_batch(stream)

        router, plane = controlled_fleet(
            make_client(database, seed=62),
            database,
            plan,
            seed_heats,
            window_seconds=0.2,
            rebalance_interval_seconds=0.4,
            cache_capacity=8,
            dedup=True,
            policy=BatchingPolicy(max_batch_size=4, max_wait_seconds=100.0),
        )
        now = 0.0
        request_ids = []
        for index in stream:
            request_ids.append(router.submit(index, arrival_seconds=now))
            now += 0.05
        router.close()
        live_records = [router.take_record(request_id) for request_id in request_ids]

        assert live_records == static_records
        assert live_records == [database.record(i) for i in stream]
        assert plane.rebalancer.total_migrations >= 1
        assert router.metrics.cache_hits > 0


class TestControlPlaneWiring:
    def test_observer_feeds_tracker_then_rebalances(self):
        database = Database.random(64, 8, seed=78)
        plan = ShardPlan.uniform(database.num_records, 2)
        router = make_router(database, plan, heats=[10.0, 0.0])
        tracker = HeatTracker(plan, window_seconds=0.5)
        rebalancer = Rebalancer(router, tracker, interval_seconds=1.0)
        plane = ControlPlane(tracker, rebalancer=rebalancer)
        router.observers.append(plane)

        ids = []
        now = 0.0
        for index in [40] * 12:  # shard 1 traffic only
            ids.append(router.submit(index, arrival_seconds=now))
            now += 0.25
        router.close()
        assert [router.take_record(i) for i in ids] == [database.record(40)] * 12
        assert tracker.observed_indices == 12
        assert rebalancer.total_migrations >= 1
        assert router.placement_kinds()[1] == "im-pir"
        assert any("rebalance" in line for line in plane.describe())

    def test_controlled_fleet_without_rebalancer_or_cache(self):
        database = Database.random(64, 8, seed=79)
        plan = ShardPlan.uniform(database.num_records, 2)
        router, plane = controlled_fleet(
            make_client(database, seed=63),
            database,
            plan,
            heats=[1.0, 1.0],
            rebalance_interval_seconds=None,
        )
        assert plane.rebalancer is None and plane.cache is None
        assert plane.reports == []
        assert router.retrieve_batch([3]) == [database.record(3)]
        assert plane.tracker.observed_indices == 1


class TestSloBurnHold:
    """An active SLO burn holds every reshape as a ``slo-burn`` verdict."""

    @pytest.fixture(scope="class")
    def database(self):
        return Database.random(128, 16, seed=83)

    def burning(self, now=0.0):
        return HealthSignal(now=now, burning=True, fast_burn=False,
                            active=("lat/slow",))

    def test_migrations_are_pinned_while_burning(self, database):
        plan = ShardPlan.uniform(database.num_records, 4)
        router = make_router(database, plan, heats=[50.0, 0.0, 0.0, 0.0])
        kinds_before = router.placement_kinds()
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker)
        tracker.observe_batch([120] * 20, now=0.0)

        report = rebalancer.rebalance(now=0.0, health=self.burning())
        assert report.migrations == []
        held = [v for v in report.suppressed if v.reason == "slo-burn"]
        assert held and all(v.action == "migrate" for v in held)
        assert all(v.saving_seconds == 0.0 and v.transfer_seconds == 0.0
                   for v in held)
        assert router.placement_kinds() == kinds_before
        assert "slo-burn" in report.describe()
        # Traffic is still served exactly through the pinned placements.
        assert router.retrieve_batch([0, 120]) == [
            database.record(0), database.record(120)
        ]

        # The alerts resolve: the held migrations re-propose themselves.
        recovered = rebalancer.rebalance(now=1.0, health=HealthSignal.healthy(1.0))
        assert recovered.migrations
        assert router.placement_kinds() != kinds_before

    def test_splits_are_held_while_burning(self, database):
        plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
        router = make_router(database, plan, heats=[1.0, 1.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker, split_heat_share=0.5,
                                max_shards=4)
        tracker.observe_batch([0] * 20 + [56] * 20, now=0.0)

        report = rebalancer.rebalance(now=0.0, health=self.burning())
        assert report.splits == [] and router.plan.version == 0
        held = [v for v in report.suppressed if v.reason == "slo-burn"]
        assert held and held[0].action == "split"
        assert (held[0].start, held[0].stop) == (0, 64)  # the hot shard's range

        recovered = rebalancer.rebalance(now=1.0)  # no health: no hold
        assert recovered.splits and router.plan.version > 0

    def test_merges_are_held_while_burning(self, database):
        plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
        router = make_router(database, plan, heats=[5.0, 0.0, 0.0, 0.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker, merge_heat_floor=0.5,
                                min_shards=2)
        tracker.observe_batch([0] * 10, now=0.0)

        report = rebalancer.rebalance(now=0.0, health=self.burning())
        assert report.merges == [] and router.plan.num_shards == 4
        held = [v for v in report.suppressed if v.reason == "slo-burn"]
        assert held and all(v.action == "merge" for v in held)

        recovered = rebalancer.rebalance(now=1.0)
        assert recovered.merges and router.plan.num_shards == 2

    def test_maybe_rebalance_forwards_health(self, database):
        plan = ShardPlan.uniform(database.num_records, 4)
        router = make_router(database, plan, heats=[50.0, 0.0, 0.0, 0.0])
        tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
        rebalancer = Rebalancer(router, tracker, interval_seconds=1.0)
        tracker.observe_batch([120] * 20, now=0.0)
        assert rebalancer.maybe_rebalance(0.0, health=self.burning()) is None
        report = rebalancer.maybe_rebalance(1.0, health=self.burning(1.0))
        assert report is not None and report.migrations == []
        assert any(v.reason == "slo-burn" for v in report.suppressed)
