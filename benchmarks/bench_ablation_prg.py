"""Ablation — PRG backend cost (AES-128 vs the vectorised numpy PRG).

The paper's DPF uses AES-128 via AES-NI; this reproduction defaults to a
vectorised numpy PRG for functional speed while charging AES-block costs in
the performance model.  This ablation measures the real gap between the two
Python backends and checks that the block accounting is identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpf.dpf import DPF
from repro.dpf.prf import AESPRG, NumpyPRG, make_prg


class TestBackendWallClock:
    def test_numpy_backend_full_eval(self, benchmark):
        dpf = DPF(domain_bits=14, prg=make_prg("numpy"), seed=1)
        key0, _ = dpf.gen(100, 1)
        benchmark(dpf.eval_full_bits, key0)

    def test_aes_backend_full_eval_small_domain(self, benchmark):
        dpf = DPF(domain_bits=7, prg=make_prg("aes"), seed=1)
        key0, _ = dpf.gen(100, 1)
        benchmark(dpf.eval_full_bits, key0)

    def test_numpy_bulk_expand(self, benchmark):
        prg = NumpyPRG()
        seeds = np.random.default_rng(0).integers(0, 256, size=(4096, 16), dtype=np.uint8)
        benchmark(prg.expand, seeds)

    def test_aes_bulk_expand(self, benchmark):
        prg = AESPRG()
        seeds = np.random.default_rng(0).integers(0, 256, size=(16, 16), dtype=np.uint8)
        benchmark(prg.expand, seeds)


class TestBlockAccountingAgreement:
    def test_both_backends_charge_identical_blocks(self, benchmark):
        """Cost-model fidelity does not depend on the functional backend."""

        def count_blocks():
            counts = {}
            for backend in ("numpy", "aes"):
                prg = make_prg(backend)
                dpf = DPF(domain_bits=6, prg=prg, seed=9)
                key0, _ = dpf.gen(11, 1)
                prg.reset_counters()
                dpf.eval_full(key0)
                counts[backend] = prg.blocks_consumed
            return counts

        counts = benchmark(count_blocks)
        assert counts["numpy"] == counts["aes"]
        assert counts["numpy"] == 2 * (2**6 - 1)
