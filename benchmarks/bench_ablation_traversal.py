"""Ablation — DPF full-domain traversal strategies (paper §3.2, Fig. 7).

Not a figure in the paper, but the design discussion it quantifies: the
branch-parallel traversal recomputes every root-to-leaf path (N log N PRG
calls and a per-leaf working set that does not fit in a DPU's 64 KB WRAM),
the level-by-level traversal is PRG-optimal but needs the whole level in
memory, and the memory-bounded traversal trades a little recomputation for a
bounded working set — the reason IM-PIR keeps evaluation on the host CPU.
"""

from __future__ import annotations

import pytest

from repro.dpf.dpf import DPF
from repro.dpf.traversal import (
    BranchParallelTraversal,
    LevelByLevelTraversal,
    MemoryBoundedTraversal,
    TraversalStats,
)
from repro.pim.config import DPUConfig

DOMAIN_BITS = 13


@pytest.fixture(scope="module")
def dpf_and_key():
    dpf = DPF(domain_bits=DOMAIN_BITS, seed=77)
    key0, _ = dpf.gen(4097, 1)
    return dpf, key0


class TestTraversalWallClock:
    def test_level_by_level(self, benchmark, dpf_and_key):
        dpf, key = dpf_and_key
        benchmark(LevelByLevelTraversal().eval_full, dpf, key)

    def test_branch_parallel(self, benchmark, dpf_and_key):
        dpf, key = dpf_and_key
        benchmark(BranchParallelTraversal().eval_full, dpf, key)

    @pytest.mark.parametrize("chunk", [256, 1024])
    def test_memory_bounded(self, benchmark, dpf_and_key, chunk):
        dpf, key = dpf_and_key
        benchmark(MemoryBoundedTraversal(chunk_leaves=chunk).eval_full, dpf, key)


class TestTraversalCostProfile:
    def test_prg_calls_and_memory_report(self, benchmark, dpf_and_key):
        """Regenerate the strategy-comparison table (PRG calls, peak memory)."""
        dpf, key = dpf_and_key

        def profile():
            rows = {}
            for name, strategy in (
                ("level_by_level", LevelByLevelTraversal()),
                ("memory_bounded(1024)", MemoryBoundedTraversal(chunk_leaves=1024)),
                ("branch_parallel", BranchParallelTraversal()),
            ):
                stats = TraversalStats()
                strategy.eval_full(dpf, key, stats=stats)
                rows[name] = stats
            return rows

        rows = benchmark(profile)
        wram = DPUConfig().wram_bytes
        print("\nTraversal ablation (domain 2^%d):" % DOMAIN_BITS)
        for name, stats in rows.items():
            fits = "fits" if stats.peak_memory_bytes <= wram else "exceeds"
            print(
                f"  {name:>22}: prg_calls={stats.prg_calls:>7}  "
                f"peak_memory={stats.peak_memory_bytes:>9} B ({fits} 64 KB WRAM)  "
                f"redundancy={stats.redundancy_factor:.2f}x"
            )
        assert rows["branch_parallel"].prg_calls > rows["level_by_level"].prg_calls
        assert rows["memory_bounded(1024)"].peak_memory_bytes < rows["level_by_level"].peak_memory_bytes
        # The paper's WRAM argument: a full level at this domain size already
        # exceeds a DPU's WRAM, while the bounded traversal stays inside it.
        assert rows["level_by_level"].peak_memory_bytes > wram
        assert rows["memory_bounded(1024)"].peak_memory_bytes <= wram
