"""Table 1 — average percentage contribution of each server-side phase.

Paper reference: IM-PIR spends 76.45% of a query in DPF evaluation, 7.17% in
CPU->DPU copies, 16.20% in dpXOR, 0.18% in DPU->CPU copies and ~0% in
aggregation; CPU-PIR spends 16.64% in evaluation and 83.36% in dpXOR.
"""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import compare_fraction_tables
from repro.bench import paper_reference as paper
from repro.bench.figures import table1_phase_contributions
from repro.bench.reporting import render_table1


class TestRegenerateTable1:
    def test_table1(self, benchmark):
        result = benchmark(table1_phase_contributions)
        print("\n" + render_table1(result))

        impir_diff = compare_fraction_tables(result.impir_fractions, paper.TABLE1_IMPIR)
        cpu_diff = compare_fraction_tables(result.cpu_fractions, paper.TABLE1_CPU)
        print("IM-PIR |measured - paper| (percentage points):", {k: round(v, 2) for k, v in impir_diff.items()})
        print("CPU-PIR |measured - paper| (percentage points):", {k: round(v, 2) for k, v in cpu_diff.items()})

        # Qualitative claims (Take-away 4) hold exactly; quantitative shares
        # land within 15 percentage points of the paper's Table 1.
        assert result.impir_fractions["eval"] > 0.55
        assert result.cpu_fractions["dpxor"] > 0.6
        assert all(diff < 15.0 for diff in impir_diff.values())
        assert all(diff < 15.0 for diff in cpu_diff.values())

    def test_phase_ordering_matches_paper(self, benchmark):
        result = benchmark(table1_phase_contributions, db_sizes_gib=(4.0, 8.0, 16.0, 32.0))
        impir = result.impir_fractions
        # eval > dpxor > copy_in > copy_out > aggregate, as in the paper's row.
        assert (
            impir["eval"]
            > impir["dpxor"]
            > impir["copy_cpu_to_dpu"] * 0.99
        )
        assert impir["copy_cpu_to_dpu"] > impir["copy_dpu_to_cpu"] > impir["aggregate"]
