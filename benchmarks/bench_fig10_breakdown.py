"""Figure 10 — per-phase latency breakdown for IM-PIR and CPU-PIR.

Paper reference (§5.3, Fig. 10): in CPU-PIR the dpXOR scan dominates query
latency; in IM-PIR the in-memory dpXOR shrinks to a minor share and the
host-side DPF evaluation becomes the bottleneck (Take-away 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import fig10_breakdown
from repro.bench.reporting import render_fig10
from repro.core.impir import IMPIRServer
from repro.core.results import PHASE_DPXOR, PHASE_EVAL
from repro.cpu.cpu_pir import CPUPIRServer
from repro.dpf.prf import make_prg
from repro.pim.dpu import DPU
from repro.pim.config import DPUConfig
from repro.pim.kernels import DB_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pir.client import PIRClient


class TestRegenerateFigure10:
    def test_fig10_breakdowns(self, benchmark):
        result = benchmark(fig10_breakdown)
        print("\n" + render_fig10(result))
        assert result.impir_fractions["eval"] > result.impir_fractions["dpxor"]
        assert result.cpu_fractions["dpxor"] > result.cpu_fractions["eval"]
        # Latency grows linearly-ish with DB size for both systems.
        impir_totals = result.impir_table.totals()
        assert impir_totals[-1] > 10 * impir_totals[0]


class TestFunctionalPhases:
    """Measured wall-clock of the individual pipeline phases."""

    def test_impir_query_breakdown_phases_present(self, benchmark, bench_db, bench_impir_config):
        server = IMPIRServer(bench_db, config=bench_impir_config, server_id=0)
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=5, prg=make_prg("numpy"))
        query = client.query(123)[0]
        result = benchmark(server.answer, query)
        assert result.breakdown.get(PHASE_EVAL) > 0
        assert result.breakdown.get(PHASE_DPXOR) > 0

    def test_cpu_query_breakdown(self, benchmark, bench_db):
        server = CPUPIRServer(bench_db, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=6, prg=make_prg("numpy"))
        query = client.query(55)[0]
        result = benchmark(server.answer_with_breakdown, query)
        assert result.breakdown.get("dpxor") > 0

    def test_dpu_kernel_phase(self, benchmark):
        """The simulated DPU-side dpXOR kernel on a 1 MB MRAM block."""
        rng = np.random.default_rng(4)
        num_records, record_size = 32768, 32
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        selector = rng.integers(0, 2, size=num_records, dtype=np.uint8)
        dpu = DPU(0, config=DPUConfig(tasklets=16))
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(selector, bitorder="big"))
        report = benchmark(
            dpu.launch, DpXorKernel(), num_records=num_records, record_size=record_size
        )
        assert report.simulated_seconds > 0
