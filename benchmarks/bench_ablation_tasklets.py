"""Ablation — tasklet count per DPU (paper §5.2 configuration choice).

The paper runs 16 tasklets per DPU, citing the UPMEM characterisation result
that >= 11 tasklets are needed to fill the in-order pipeline.  This ablation
sweeps the tasklet count through the cost model and through the functional
kernel to show the saturation behaviour that justifies the choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import MIB
from repro.pim.config import DPUConfig, UPMEM_PAPER_CONFIG
from repro.pim.dpu import DPU
from repro.pim.kernels import DB_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pim.timing import PIMTimingModel

TASKLET_SWEEP = (1, 2, 4, 8, 11, 16, 24)


class TestTaskletSweepModel:
    def test_kernel_time_vs_tasklets(self, benchmark):
        """Regenerate the tasklet-scaling curve from the cost model."""
        timing = PIMTimingModel(UPMEM_PAPER_CONFIG)

        def sweep():
            return {
                tasklets: timing.dpu_dpxor_cost(4 * MIB, 32, tasklets=tasklets).total_seconds
                for tasklets in TASKLET_SWEEP
            }

        times = benchmark(sweep)
        print("\nPer-DPU dpXOR time on a 4 MB block vs tasklet count:")
        for tasklets, seconds in times.items():
            print(f"  {tasklets:>3} tasklets: {seconds * 1e3:8.2f} ms")
        assert times[1] > times[8] > times[11]
        # Saturation beyond the pipeline depth (the paper's recommendation).
        assert times[16] == pytest.approx(times[11], rel=0.05)
        assert times[24] == pytest.approx(times[16], rel=0.05)


class TestTaskletSweepFunctional:
    @pytest.mark.parametrize("tasklets", [2, 8, 16])
    def test_functional_kernel(self, benchmark, tasklets):
        rng = np.random.default_rng(tasklets)
        num_records = 16384
        database = rng.integers(0, 256, size=(num_records, 32), dtype=np.uint8)
        selector = rng.integers(0, 2, size=num_records, dtype=np.uint8)
        dpu = DPU(0, config=DPUConfig(tasklets=tasklets))
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(selector, bitorder="big"))
        report = benchmark(
            dpu.launch, DpXorKernel(), num_records=num_records, record_size=32
        )
        assert report.tasklets_used == tasklets
