"""Figure 12 — comparison with the GPU-PIR baseline of Lam et al.

Paper reference (§5.5): on databases up to 1 GB, IM-PIR achieves up to 1.34x
the throughput of GPU-PIR (and ~1.3x lower latency), while GPU-PIR itself
improves on CPU-PIR by up to 1.36x — i.e. CPU < GPU < PIM.
"""

from __future__ import annotations

import pytest

from repro.bench import paper_reference as paper
from repro.bench.figures import fig12_gpu_comparison
from repro.bench.reporting import render_fig12
from repro.dpf.prf import make_prg
from repro.gpu.gpu_pir import GPUPIRServer
from repro.pir.client import PIRClient


class TestRegenerateFigure12:
    def test_fig12_series(self, benchmark):
        result = benchmark(fig12_gpu_comparison)
        print("\n" + render_fig12(result))
        # Ordering CPU < GPU < IM-PIR holds for the 0.5-1 GB range.
        for size in (0.5, 0.75, 1.0):
            cpu = result.series["CPU-PIR"].point_at(size).throughput_qps
            gpu = result.series["GPU-PIR"].point_at(size).throughput_qps
            impir = result.series["IM-PIR"].point_at(size).throughput_qps
            assert cpu < gpu < impir
        assert result.gpu_over_cpu.max_throughput_speedup == pytest.approx(
            paper.FIG12_GPU_OVER_CPU, abs=0.5
        )
        assert result.impir_over_gpu.max_throughput_speedup > 1.0


class TestFunctionalGPUBaseline:
    def test_gpu_server_batch(self, benchmark, bench_db):
        server = GPUPIRServer(bench_db, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=4, prg=make_prg("numpy"))
        queries = [client.query(i * 19 % bench_db.num_records)[0] for i in range(8)]
        result = benchmark(server.answer_batch, queries)
        assert len(result.answers) == 8

    def test_gpu_single_query_breakdown(self, benchmark, bench_db):
        server = GPUPIRServer(bench_db, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=5, prg=make_prg("numpy"))
        query = client.query(99)[0]
        result = benchmark(server.answer_with_breakdown, query)
        assert result.latency_seconds > 0
