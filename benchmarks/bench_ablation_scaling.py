"""Ablation — scaling with the DPU population and streamed oversized databases.

Two design questions DESIGN.md calls out but the paper does not plot
directly:

* how IM-PIR's throughput scales as the DPU population grows from a few
  hundred to the full 2,560 the server can host (the "more PIM modules"
  trajectory the paper's §3.3 discussion anticipates); and
* what a query costs when the database does *not* fit in MRAM and must be
  streamed through the DPUs per query (§3.3's batched-evaluation fallback).
"""

from __future__ import annotations

import pytest

from repro.bench.estimators import IMPIREstimator
from repro.core.config import IMPIRConfig
from repro.core.streaming import PHASE_COPY_DB, StreamedIMPIRServer
from repro.dpf.prf import make_prg
from repro.pim.config import PIMConfig, scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.workloads.generator import DatabaseSpec

DPU_SWEEP = (256, 512, 1024, 2048, 2560)


class TestDPUPopulationScaling:
    def test_throughput_vs_dpu_count(self, benchmark):
        """Regenerate the DPU-scaling curve at an 8 GB database, batch 32."""
        spec = DatabaseSpec.from_size_gib(8.0)

        def sweep():
            results = {}
            for dpus in DPU_SWEEP:
                config = IMPIRConfig(pim=PIMConfig(num_dpus=dpus))
                results[dpus] = IMPIREstimator(config).batch_estimate(spec, 32).throughput_qps
            return results

        throughputs = benchmark(sweep)
        print("\nIM-PIR throughput vs DPU population (8 GB DB, batch 32):")
        for dpus, qps in throughputs.items():
            print(f"  {dpus:>5} DPUs: {qps:7.1f} QPS")
        # More DPUs never hurt, and the first doubling helps substantially
        # while the last one is limited by the host-side evaluation.
        values = list(throughputs.values())
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:]))
        first_doubling = throughputs[512] / throughputs[256]
        last_step = throughputs[2560] / throughputs[2048]
        assert first_doubling > last_step

    def test_dpxor_phase_shrinks_with_more_dpus(self, benchmark):
        spec = DatabaseSpec.from_size_gib(8.0)

        def dpxor_share(dpus):
            config = IMPIRConfig(pim=PIMConfig(num_dpus=dpus))
            breakdown = IMPIREstimator(config).query_breakdown(spec)
            return breakdown.get("dpxor") / breakdown.total

        shares = benchmark(lambda: {d: dpxor_share(d) for d in (256, 2048)})
        assert shares[2048] < shares[256]


class TestStreamedOversizedDatabase:
    def test_streamed_query(self, benchmark, bench_db):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=4))
        server = StreamedIMPIRServer(bench_db, config=config, server_id=0, segment_records=1024)
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=1, prg=make_prg("numpy"))
        query = client.query(1000)[0]
        result = benchmark(server.answer, query)
        assert result.breakdown.get(PHASE_COPY_DB) > 0

    def test_streaming_overhead_report(self, benchmark):
        """Quantify the preloading advantage the paper's design relies on."""
        database = Database.random(2048, 32, seed=9)
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=4))
        client = PIRClient(database.num_records, database.record_size, seed=2, prg=make_prg("numpy"))
        query = client.query(5)[0]

        def compare():
            from repro.core.impir import IMPIRServer

            preloaded = IMPIRServer(database, config=config, server_id=0).answer(query)
            streamed = StreamedIMPIRServer(
                database, config=config, server_id=0, segment_records=512
            ).answer(query)
            return preloaded.latency_seconds, streamed.latency_seconds

        preloaded_s, streamed_s = benchmark(compare)
        print(
            f"\npreloaded query: {preloaded_s * 1e3:.3f} ms (model)  "
            f"streamed query: {streamed_s * 1e3:.3f} ms (model)  "
            f"penalty: {streamed_s / preloaded_s:.2f}x"
        )
        assert streamed_s > preloaded_s
