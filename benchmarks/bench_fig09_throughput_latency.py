"""Figure 9 — query throughput and latency vs database size and batch size.

Paper reference (§5.3, Fig. 9): with a batch of 32 queries, IM-PIR improves
throughput over CPU-PIR by 1.7x at 0.5 GB, growing to more than 3.7x at 8 GB;
at a fixed 1 GB database the improvement averages ~2.6x across batch sizes.
"""

from __future__ import annotations

import pytest

from repro.bench import paper_reference as paper
from repro.bench.figures import fig9_throughput_latency
from repro.bench.reporting import render_fig9
from repro.core.impir import IMPIRServer
from repro.cpu.cpu_pir import CPUPIRServer
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient


class TestRegenerateFigure9:
    def test_fig9_series(self, benchmark):
        result = benchmark(
            fig9_throughput_latency,
            batch_sizes=(4, 8, 16, 32, 64, 128, 256, 512),
        )
        print("\n" + render_fig9(result))
        speedups = result.speedup_vs_db_size.throughput_speedups
        assert speedups[8.0] > speedups[0.5] > 1.2
        assert speedups[8.0] == pytest.approx(paper.FIG9_SPEEDUP_AT_8_GIB, abs=1.0)
        assert result.speedup_vs_batch_size.mean_throughput_speedup == pytest.approx(
            paper.FIG9_MEAN_SPEEDUP_AT_1_GIB, abs=0.8
        )


class TestFunctionalBatch:
    """Measured wall-clock of batch answering on the functional simulators."""

    def test_impir_batch_of_8(self, benchmark, bench_db, bench_impir_config):
        server = IMPIRServer(bench_db, config=bench_impir_config, server_id=0)
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=1, prg=make_prg("numpy"))
        queries = [client.query(i * 97 % bench_db.num_records)[0] for i in range(8)]
        result = benchmark(server.answer_batch, queries)
        assert result.batch_size == 8

    def test_cpu_batch_of_8(self, benchmark, bench_db):
        server = CPUPIRServer(bench_db, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=2, prg=make_prg("numpy"))
        queries = [client.query(i * 31 % bench_db.num_records)[0] for i in range(8)]
        result = benchmark(server.answer_batch, queries)
        assert len(result.answers) == 8

    def test_impir_single_query(self, benchmark, bench_db, bench_impir_config):
        server = IMPIRServer(bench_db, config=bench_impir_config, server_id=0)
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=3, prg=make_prg("numpy"))
        query = client.query(777)[0]
        result = benchmark(server.answer, query)
        assert result.answer.payload == bench_db.record(777) or len(result.answer.payload) == 32
