"""Figure 11 — effect of DPU clustering on batch throughput and latency.

Paper reference (§5.4): splitting the 2,048 DPUs into clusters that each hold
a full copy of the 1 GB database lets queries' dpXOR phases run concurrently,
improving throughput by up to 1.35x over the single-cluster configuration and
reducing batch latency.
"""

from __future__ import annotations

import pytest

from repro.bench import paper_reference as paper
from repro.bench.figures import fig11_clustering
from repro.bench.reporting import render_fig11
from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRServer
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient


class TestRegenerateFigure11:
    def test_fig11_series(self, benchmark):
        result = benchmark(fig11_clustering)
        print("\n" + render_fig11(result))
        assert result.max_gain_over_single_cluster >= 1.1
        # More clusters never reduce throughput at any batch size.
        single = result.series_by_clusters[1]
        for clusters, series in result.series_by_clusters.items():
            for point, base in zip(series.points, single.points):
                assert point.throughput_qps >= base.throughput_qps * 0.999

    def test_gain_reported_against_paper(self, benchmark):
        result = benchmark(fig11_clustering, batch_sizes=(32, 64, 128))
        print(
            f"\nmax clustering gain: {result.max_gain_over_single_cluster:.2f}x "
            f"(paper: up to {paper.FIG11_MAX_CLUSTER_GAIN:.2f}x)"
        )
        assert result.max_gain_over_single_cluster > 1.0


class TestFunctionalClustering:
    """Functional batch runs on the scaled-down platform, 1 vs 4 clusters."""

    @pytest.mark.parametrize("clusters", [1, 4])
    def test_clustered_batch(self, benchmark, bench_db, clusters):
        config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=clusters)
        server = IMPIRServer(bench_db, config=config, server_id=0)
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=clusters, prg=make_prg("numpy"))
        queries = [client.query(i * 13 % bench_db.num_records)[0] for i in range(8)]
        result = benchmark(server.answer_batch, queries)
        assert result.batch_size == 8
