"""Figure 3 — motivation: DPF-PIR cost breakdown and roofline placement.

Paper reference (§2.3, Fig. 3): on a single CPU thread, dpXOR takes ~10x
longer than DPF evaluation, which is itself ~1000x longer than key
generation; the roofline model places both server-side kernels deep in the
memory-bound region.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import fig3_motivation
from repro.bench.reporting import render_fig3
from repro.dpf.dpf import DPF
from repro.pir.xor_ops import dpxor


class TestRegenerateFigure3:
    def test_fig3_series(self, benchmark):
        """Regenerate Fig. 3(a)/(b) from the calibrated cost model."""
        result = benchmark(fig3_motivation)
        print("\n" + render_fig3(result))
        largest = result.breakdowns[-1]
        assert largest.dpxor_seconds > largest.eval_seconds > largest.gen_seconds
        assert all(point.memory_bound for point in result.roofline_points if point.name == "dpXOR")


class TestFunctionalCounterparts:
    """Measured wall-clock of the real kernels behind Fig. 3's three phases."""

    def test_gen_cost(self, benchmark):
        dpf = DPF(domain_bits=20, seed=1)
        benchmark(dpf.gen, 12345, 1)

    def test_eval_full_cost(self, benchmark):
        dpf = DPF(domain_bits=14, seed=2)
        key0, _ = dpf.gen(999, 1)
        result = benchmark(dpf.eval_full_bits, key0)
        assert result.shape == (1 << 14,)

    def test_dpxor_cost(self, benchmark, bench_db):
        selector = np.random.default_rng(0).integers(0, 2, bench_db.num_records, dtype=np.uint8)
        result = benchmark(dpxor, bench_db.records, selector)
        assert result.shape == (bench_db.record_size,)

    def test_gen_much_cheaper_than_eval(self, bench_db):
        """The asymptotic claim behind Fig. 3: Gen is O(log N), Eval is O(N)."""
        dpf = DPF(domain_bits=14, seed=3)
        key0, _ = dpf.gen(1, 1)
        stats_before = dpf.prg.expand_calls
        dpf.gen(2, 1)
        gen_expansions = dpf.prg.expand_calls - stats_before
        stats_before = dpf.prg.expand_calls
        dpf.eval_full(key0)
        eval_expansions = dpf.prg.expand_calls - stats_before
        assert eval_expansions > 100 * gen_expansions
