"""Shared fixtures for the benchmark harness.

Every module here regenerates one of the paper's tables or figures.  Each
module combines:

* **pytest-benchmark measurements** of the real Python kernels (numpy dpXOR,
  full-domain DPF evaluation, the simulated DPU kernel, end-to-end IM-PIR
  queries on a scaled-down platform) so functional performance regressions are
  caught; and
* **figure regeneration** runs that evaluate the calibrated cost models at the
  paper's database/batch sizes and print the same rows/series the paper
  reports (run with ``-s`` to see them; EXPERIMENTS.md snapshots the output).
"""

from __future__ import annotations

import pytest

from repro.core.config import IMPIRConfig
from repro.pim.config import scaled_down_config
from repro.pir.database import Database


@pytest.fixture(scope="session")
def bench_db() -> Database:
    """A 4,096-record 32-byte-record database used by functional benchmarks."""
    return Database.random(4096, record_size=32, seed=1234)


@pytest.fixture(scope="session")
def bench_impir_config() -> IMPIRConfig:
    """Scaled-down IM-PIR platform for functional end-to-end benchmarks."""
    return IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
