"""Functional kernel benchmarks: the real Python/numpy code paths.

These do not correspond to a specific paper figure; they track the wall-clock
cost of the building blocks every experiment relies on, so regressions in the
functional implementation are visible independently of the cost models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.impir import IMPIRServer
from repro.dpf.dpf import DPF
from repro.dpf.naive import NaiveXorQueryScheme
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.protocol import MultiServerPIRProtocol
from repro.pir.xor_ops import dpxor, dpxor_two_stage


class TestXorKernels:
    def test_dpxor_4096x32(self, benchmark, bench_db):
        selector = np.random.default_rng(1).integers(0, 2, bench_db.num_records, dtype=np.uint8)
        benchmark(dpxor, bench_db.records, selector)

    def test_dpxor_two_stage_16_workers(self, benchmark, bench_db):
        selector = np.random.default_rng(2).integers(0, 2, bench_db.num_records, dtype=np.uint8)
        benchmark(dpxor_two_stage, bench_db.records, selector, 16)

    def test_dpxor_wide_records(self, benchmark):
        db = Database.random(1024, 256, seed=3)
        selector = np.random.default_rng(3).integers(0, 2, 1024, dtype=np.uint8)
        benchmark(dpxor, db.records, selector)


class TestDPFKernels:
    def test_key_generation(self, benchmark):
        dpf = DPF(domain_bits=20, seed=4)
        benchmark(dpf.gen, 123456, 1)

    def test_full_domain_eval_2_to_12(self, benchmark):
        dpf = DPF(domain_bits=12, seed=5)
        key0, _ = dpf.gen(99, 1)
        benchmark(dpf.eval_full_bits, key0)

    def test_naive_share_generation(self, benchmark):
        scheme = NaiveXorQueryScheme(num_items=4096, seed=6)
        benchmark(scheme.share, 1000)


class TestEndToEnd:
    def test_reference_protocol_retrieve(self, benchmark, bench_db):
        protocol = MultiServerPIRProtocol(bench_db, seed=7)
        record = benchmark(protocol.retrieve, 2222)
        assert record == bench_db.record(2222)

    def test_impir_preload(self, benchmark, bench_db, bench_impir_config):
        result = benchmark(IMPIRServer, bench_db, config=bench_impir_config, server_id=0)
        assert result.preload_report is not None

    def test_client_query_generation(self, benchmark, bench_db):
        client = PIRClient(bench_db.num_records, bench_db.record_size, seed=8, prg=make_prg("numpy"))
        queries = benchmark(client.query, 17)
        assert len(queries) == 2
