PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint smoke bench bench-quick figures

## The CI gate: tier-1 tests + lint + a functional cross-backend smoke run
## + a quick batched-vs-sequential perf smoke (asserts batched >= sequential).
check: test lint smoke bench-quick

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint.py src tools

## Answers a seeded query set through every registered backend via the
## shared QueryEngine and a PIRFrontend batch, then re-drives it through the
## asyncio frontend (real timers, concurrent replica dispatch), then drives
## a drifting Zipf workload through the online control plane (asserts >= 1
## heat-driven shard migration, a nonzero hot-cache hit rate, and records
## bit-identical to a static fleet), then re-drives the drift with the
## plan-shape policy on (asserts >= 1 online split and merge, heat carried
## across every topology version, records identical to a static fleet),
## then re-drives it with the observability hub attached (asserts records
## bit-identical to the uninstrumented run, span totals float-equal to the
## engine's PhaseTimer totals, >= 1 rebalance event, nonzero cache hits),
## then drives a surging workload through the closed-loop autoscaler
## (asserts >= 1 scale-up, >= 1 scale-down, >= 1 damped reshape, records
## bit-identical to a static fleet), then drives calm -> injected latency
## fault -> recovery through the SLO engine (asserts the fast-burn alert
## fires and resolves, the alert-escalated scale-up lands on the pass
## report, incident bundles are schema-valid and deterministic across two
## runs, records bit-identical to a static fleet); exits non-zero on any
## drift.
smoke:
	$(PYTHON) -m repro.bench.cli smoke
	$(PYTHON) -m repro.bench.cli smoke --async
	$(PYTHON) -m repro.bench.cli smoke --rebalance
	$(PYTHON) -m repro.bench.cli smoke --resplit
	$(PYTHON) -m repro.bench.cli smoke --batched
	$(PYTHON) -m repro.bench.cli smoke --traced
	$(PYTHON) -m repro.bench.cli smoke --autoscale
	$(PYTHON) -m repro.bench.cli smoke --slo

## Wall-clock benchmark of the batched one-pass scan path against the
## sequential per-query path on the reference backend (records/sec, batched
## QPS, speedup, simulated p50/p99 latency, the shard-count x executor x
## batch crossover sweep with ScanTuner verdicts, and the host hardware
## context); archives the run to benchmarks/history/BENCH_<git-sha>.json —
## its only artifact.  Compare two runs with
## `python tools/bench_compare.py OLD.json NEW.json`, or the whole
## trajectory with `python tools/bench_compare.py benchmarks/history`.
bench:
	$(PYTHON) -m repro.bench.cli bench

## Small-shape variant for `make check`: no JSON artifact, asserts the
## batched path is no slower than the sequential one.
bench-quick:
	$(PYTHON) -m repro.bench.cli bench --quick

figures:
	$(PYTHON) -m repro.bench.cli all
