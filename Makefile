PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint smoke figures

## The CI gate: tier-1 tests + lint + a functional cross-backend smoke run.
check: test lint smoke

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint.py src tools

## Answers a seeded query set through every registered backend via the
## shared QueryEngine and a PIRFrontend batch, then re-drives it through the
## asyncio frontend (real timers, concurrent replica dispatch), then drives
## a drifting Zipf workload through the online control plane (asserts >= 1
## heat-driven shard migration, a nonzero hot-cache hit rate, and records
## bit-identical to a static fleet), then re-drives the drift with the
## plan-shape policy on (asserts >= 1 online split and merge, heat carried
## across every topology version, records identical to a static fleet);
## exits non-zero on any drift.
smoke:
	$(PYTHON) -m repro.bench.cli smoke
	$(PYTHON) -m repro.bench.cli smoke --async
	$(PYTHON) -m repro.bench.cli smoke --rebalance
	$(PYTHON) -m repro.bench.cli smoke --resplit

figures:
	$(PYTHON) -m repro.bench.cli all
