#!/usr/bin/env python3
"""Dependency-free lint for the repo: unused imports and duplicate imports.

The container ships no third-party linter, so ``make check`` runs this small
AST pass instead.  It flags:

* imported names never referenced in the module (including in annotations
  and in ``__all__`` export lists);
* the same name imported more than once in a module;
* wildcard imports from the library itself (``from repro... import *``),
  which defeat both checks above and hide a module's real dependencies;
* ``asyncio.get_event_loop()`` — deprecated outside a running loop; library
  code must use ``asyncio.get_running_loop()`` (or ``asyncio.run`` at the
  top level) so it never implicitly creates a loop;
* wall-clock reads under ``src/repro/control/``, ``src/repro/shard/`` and
  ``src/repro/obs/`` —
  ``time.time()``, ``time.monotonic()``, ``time.perf_counter()``,
  ``time.sleep()`` (through any ``import time as ...`` alias), ``from time
  import ...`` and the ``datetime`` module — the control plane, the
  shard layer it mutates (topology swaps, live migrations) and the
  observability layer judging them (SLO windows, burn-rate alerts, incident
  bundles) run on the simulated clock only (``now`` comes from the caller),
  which is what keeps rebalancing, reshape and alerting decisions
  deterministic and unit-testable;
* event-loop clock reads under the same packages —
  ``asyncio.get_running_loop().time()`` / ``get_event_loop().time()``,
  directly or through a name assigned from either getter — ``loop.time``
  is the asyncio spelling of ``time.monotonic()``, and the autoscaler's
  control driver must have its clock *injected* by the caller instead
  (production passes the loop's ``time`` from outside the package, tests
  pass a simulated clock);
* per-record Python loops (single-argument ``for ... in range(num_records)``)
  under ``src/repro/pir/`` and ``src/repro/core/`` — data-plane scans must go
  through the vectorised kernels; chunked ``range(start, stop, step)`` walks
  remain legal;
* per-query Python loops over the batch dimension (single-argument
  ``for ... in range(batch)`` / ``range(batch_size)``) under
  ``src/repro/shard/`` and ``src/repro/pim/`` — the batched scan and kernel
  paths exist precisely so nothing walks a batch query by query in Python;
  as with the per-record rule, chunked ranges stay legal;
* bare ``print(`` anywhere under ``src/repro/`` — library code reports
  through the structured event log (:mod:`repro.obs.events`) or returns
  strings for the CLI layer to print; only the CLI entry points
  (``cli.py``, ``__main__.py``) are user-facing by design and exempt.

Usage::

    python tools/lint.py src [more dirs...]

Exit status is non-zero when any finding is reported.  Append ``# noqa`` to
an import line to suppress it (e.g. intentional re-exports outside
``__init__.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def iter_python_files(roots: List[str]) -> Iterator[Path]:
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        else:
            yield from sorted(path.rglob("*.py"))


def _noqa_lines(source: str) -> set:
    return {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if "# noqa" in line
    }


class _UsageCollector(ast.NodeVisitor):
    """Collects every identifier a module references."""

    def __init__(self) -> None:
        self.used = set()

    def visit_Name(self, node: ast.Name) -> None:
        self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # ``pkg.mod.attr`` marks ``pkg`` used; the Name child handles that.
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        # Strings inside __all__ / docstring cross-references count as usage;
        # harvesting every string constant keeps re-export modules clean
        # without special-casing __all__ assignment shapes.
        if isinstance(node.value, str) and node.value.isidentifier():
            self.used.add(node.value)
        self.generic_visit(node)


#: Wall-clock readers of the ``time`` module, banned under the simulated-
#: clock-only control plane (``time.time`` et al. read the host's clock).
WALL_CLOCK_ATTRS = {"time", "monotonic", "perf_counter", "sleep"}


#: Packages whose code must never read the host clock: the control plane
#: (rebalancing decisions), the shard layer it mutates (topology swaps,
#: live migrations) and the observability layer judging both (SLO windows,
#: burn-rate alerts, flight-recorder bundles) all run on the simulated
#: clock only.
SIMULATED_CLOCK_PACKAGES = ("control", "shard", "obs")


#: asyncio accessors returning an event loop whose ``.time()`` is the
#: wall clock in disguise (``loop.time()`` == ``time.monotonic()``).
LOOP_GETTERS = {"get_running_loop", "get_event_loop"}


def _is_loop_getter_call(node: ast.AST) -> bool:
    """True for ``asyncio.get_running_loop()`` / ``asyncio.get_event_loop()``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in LOOP_GETTERS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "asyncio"
    )


def _is_simulated_clock_only(path: Path) -> bool:
    # The consecutive repro/<package> pair, not the two names anywhere in
    # the path: a checkout living under a directory called "control" or
    # "shard" must not sweep the whole library into the simulated-clock ban.
    parts = path.parts
    return any(
        parts[i] == "repro" and parts[i + 1] in SIMULATED_CLOCK_PACKAGES
        for i in range(len(parts) - 1)
    )


#: Packages whose data-plane scans must stay vectorised: a per-record Python
#: loop over the whole database re-introduces the O(N) interpreter cost the
#: batched numpy kernels (``dpxor_many`` and friends) exist to remove.
VECTORIZED_SCAN_PACKAGES = ("pir", "core")


def _is_vectorized_scan_only(path: Path) -> bool:
    parts = path.parts
    return any(
        parts[i] == "repro" and parts[i + 1] in VECTORIZED_SCAN_PACKAGES
        for i in range(len(parts) - 1)
    )


#: CLI entry-point modules: printing is their job, everywhere else in the
#: library it bypasses the structured event log and pollutes stdout.
PRINT_EXEMPT_BASENAMES = {"cli.py", "__main__.py"}


def _is_print_banned(path: Path) -> bool:
    if path.name in PRINT_EXEMPT_BASENAMES:
        return False
    # The ``repro`` path part marks library code (src/repro/...); tools/ and
    # tests/ never contain it, so they stay free to print.
    return "repro" in path.parts


def _is_single_arg_range_over(node: ast.AST, bound_names: set) -> bool:
    """True for ``for ... in range(<name>)`` where ``<name>`` is in
    ``bound_names`` (as a bare name or an attribute), single-argument form
    only.  Chunk walks like ``range(0, bound, chunk)`` stay legal — they
    iterate once per block, not once per element.
    """
    if not isinstance(node, ast.For):
        return False
    call = node.iter
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 1
        and not call.keywords
    ):
        return False
    bound = call.args[0]
    if isinstance(bound, ast.Name):
        return bound.id in bound_names
    return isinstance(bound, ast.Attribute) and bound.attr in bound_names


def _is_per_record_loop(node: ast.AST) -> bool:
    """True for ``for ... in range(num_records)`` (single-argument form only)."""
    return _is_single_arg_range_over(node, {"num_records"})


#: Packages whose batch handling must stay batched: a per-query Python loop
#: over the batch dimension re-introduces the per-dispatch overhead the
#: batched scan workers (``scan_many_into``) and the batched DPU kernel
#: (``DpXorManyKernel`` via ``run_dpu_pipeline_many``) exist to amortise.
BATCHED_SCAN_PACKAGES = ("shard", "pim")


def _is_batched_scan_only(path: Path) -> bool:
    parts = path.parts
    return any(
        parts[i] == "repro" and parts[i + 1] in BATCHED_SCAN_PACKAGES
        for i in range(len(parts) - 1)
    )


def _is_per_query_batch_loop(node: ast.AST) -> bool:
    """True for ``for ... in range(batch)`` / ``range(batch_size)``."""
    return _is_single_arg_range_over(node, {"batch", "batch_size"})


def check_file(path: Path) -> List[Tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [(error.lineno or 0, f"syntax error: {error.msg}")]
    noqa = _noqa_lines(source)
    simulated_clock_only = _is_simulated_clock_only(path)
    vectorized_scan_only = _is_vectorized_scan_only(path)
    batched_scan_only = _is_batched_scan_only(path)
    print_banned = _is_print_banned(path)

    imports: List[Tuple[int, str, str]] = []  # (lineno, bound name, description)
    wildcards: List[Tuple[int, str]] = []
    deprecated: List[Tuple[int, str]] = []
    # Every name the ``time`` module is bound to (``import time``,
    # ``import time as t``) — an alias must not dodge the wall-clock check.
    time_aliases = {"time"}
    # Every name bound to an asyncio event loop (``loop = asyncio.get_
    # running_loop()``) — ``loop.time()`` is the wall clock in disguise,
    # and binding the loop first must not dodge the check below.
    loop_aliases = set()
    if simulated_clock_only:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.Assign) and _is_loop_getter_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        loop_aliases.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and _is_loop_getter_call(node.value)
                and isinstance(node.target, ast.Name)
            ):
                loop_aliases.add(node.target.id)
    for node in ast.walk(tree):
        if (
            simulated_clock_only
            and isinstance(node, ast.Attribute)
            and node.attr in WALL_CLOCK_ATTRS
            and isinstance(node.value, ast.Name)
            and node.value.id in time_aliases
        ):
            deprecated.append(
                (
                    node.lineno,
                    f"wall-clock time.{node.attr}() under a simulated-clock "
                    "package (src/repro/{control,shard,obs}/) — take `now` "
                    "from the caller",
                )
            )
        if (
            simulated_clock_only
            and isinstance(node, ast.Attribute)
            and node.attr == "time"
            and (
                _is_loop_getter_call(node.value)
                or (
                    isinstance(node.value, ast.Name)
                    and node.value.id in loop_aliases
                )
            )
        ):
            deprecated.append(
                (
                    node.lineno,
                    "event-loop clock (asyncio loop .time()) under a "
                    "simulated-clock package (src/repro/{control,shard,obs}/) — "
                    "inject the clock from the caller",
                )
            )
        if simulated_clock_only and isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "datetime":
                    deprecated.append(
                        (
                            node.lineno,
                            "import datetime under a simulated-clock package "
                            "(src/repro/{control,shard,obs}/) — take `now` "
                            "from the caller",
                        )
                    )
        if (
            print_banned
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            deprecated.append(
                (
                    node.lineno,
                    "bare print() in library code (src/repro/) — emit through "
                    "repro.obs.events.EventLog or return strings for the CLI "
                    "layer to print",
                )
            )
        if vectorized_scan_only and _is_per_record_loop(node):
            deprecated.append(
                (
                    node.lineno,
                    "per-record Python loop (for ... in range(num_records)) "
                    "under a vectorised-scan package (src/repro/{pir,core}/) "
                    "— use the batched numpy kernels or a chunked range",
                )
            )
        if batched_scan_only and _is_per_query_batch_loop(node):
            deprecated.append(
                (
                    node.lineno,
                    "per-query Python loop over the batch dimension "
                    "(for ... in range(batch[_size])) under a batched-scan "
                    "package (src/repro/{shard,pim}/) — use the batched "
                    "worker/kernel paths or a chunked range",
                )
            )
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "get_event_loop"
            and isinstance(node.value, ast.Name)
            and node.value.id == "asyncio"
        ):
            deprecated.append(
                (
                    node.lineno,
                    "asyncio.get_event_loop() is deprecated; use "
                    "asyncio.get_running_loop() (or asyncio.run at the top level)",
                )
            )
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports.append((node.lineno, bound, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            if simulated_clock_only and node.module in ("time", "datetime"):
                # ``from time import time`` would dodge the attribute check
                # above while binding the same wall-clock reader; datetime
                # constructors (``datetime.now()``) read the host clock too.
                deprecated.append(
                    (
                        node.lineno,
                        f"from {node.module} import ... under a simulated-clock "
                        "package (src/repro/{control,shard,obs}/) — take "
                        "`now` from the caller",
                    )
                )
            for alias in node.names:
                if alias.name == "*":
                    module = node.module or "."
                    if module == "repro" or module.startswith("repro."):
                        wildcards.append(
                            (
                                node.lineno,
                                f"wildcard import (from {module} import *) hides "
                                f"this module's real dependencies",
                            )
                        )
                    continue
                bound = alias.asname or alias.name
                imports.append(
                    (node.lineno, bound, f"from {node.module or '.'} import {alias.name}")
                )

    collector = _UsageCollector()
    collector.visit(tree)

    findings: List[Tuple[int, str]] = [
        (lineno, message)
        for lineno, message in wildcards + deprecated
        if lineno not in noqa
    ]
    seen = {}
    for lineno, bound, description in imports:
        if lineno in noqa:
            continue
        if bound in seen and seen[bound] != lineno:
            findings.append((lineno, f"duplicate import of {bound!r} ({description})"))
        seen.setdefault(bound, lineno)
        if bound not in collector.used:
            findings.append((lineno, f"unused import {bound!r} ({description})"))
    return sorted(findings)


def main(argv: List[str]) -> int:
    roots = argv or ["src"]
    total = 0
    for path in iter_python_files(roots):
        for lineno, message in check_file(path):
            print(f"{path}:{lineno}: {message}")
            total += 1
    if total:
        print(f"\n{total} lint finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
