#!/usr/bin/env python3
"""Diff two benchmark JSON artifacts (e.g. BENCH_PR6.json from two runs).

Usage::

    python tools/bench_compare.py BASELINE.json CANDIDATE.json

Every numeric leaf shared by both files is printed side by side with its
relative change; leaves present in only one file are listed separately so a
schema drift is visible instead of silently ignored.  Exit code is 0 unless
the files cannot be read or share no numeric leaves.
"""

from __future__ import annotations

import json
import sys
from typing import Dict


def flatten_numeric(value: object, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.path -> float`` for numeric leaves."""
    leaves: Dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(flatten_numeric(child, path))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            path = f"{prefix}[{index}]"
            leaves.update(flatten_numeric(child, path))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    return leaves


def compare(baseline: Dict[str, float], candidate: Dict[str, float]) -> str:
    """Render a side-by-side comparison of two flattened metric maps."""
    shared = sorted(set(baseline) & set(candidate))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))

    width = max((len(path) for path in shared), default=20)
    lines = [f"{'metric':<{width}} {'baseline':>14} {'candidate':>14} {'change':>9}"]
    for path in shared:
        old, new = baseline[path], candidate[path]
        if old != 0:
            change = f"{(new - old) / abs(old) * 100.0:+8.1f}%"
        else:
            change = "    n/a" if new != 0 else "   +0.0%"
        lines.append(f"{path:<{width}} {old:>14.6g} {new:>14.6g} {change:>9}")
    for path in only_base:
        lines.append(f"{path:<{width}} {baseline[path]:>14.6g} {'-':>14} {'removed':>9}")
    for path in only_cand:
        lines.append(f"{path:<{width}} {'-':>14} {candidate[path]:>14.6g} {'added':>9}")
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    maps = []
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                maps.append(flatten_numeric(json.load(handle)))
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 2
    baseline, candidate = maps
    if not set(baseline) & set(candidate):
        print("the two files share no numeric metrics", file=sys.stderr)
        return 1
    try:
        print(compare(baseline, candidate))
    except BrokenPipeError:
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
