#!/usr/bin/env python3
"""Diff benchmark JSON artifacts, or print a whole history's trajectory.

Usage::

    python tools/bench_compare.py BASELINE.json CANDIDATE.json
    python tools/bench_compare.py benchmarks/history

With two files, every numeric leaf shared by both is printed side by side
with its relative change; leaves present in only one file are listed
separately so a schema drift is visible instead of silently ignored.  If the
two runs disagree on their ``shape`` or ``hardware`` context (different
database shape, core count, numpy version or thread-cap env), a warning is
printed to stderr first — wall-clock numbers from different shapes or
machines diff apples against oranges.

With a directory (the ``make bench`` archive), every ``BENCH_*.json`` in it
is listed oldest first — one row of headline metrics per run — followed by
the full first-vs-last diff.  Exit code is 0 unless inputs cannot be read
or share no numeric leaves.
"""

from __future__ import annotations

import glob
import json
import os
import sys
from typing import Dict, List, Tuple


def flatten_numeric(value: object, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.path -> float`` for numeric leaves."""
    leaves: Dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(flatten_numeric(child, path))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            path = f"{prefix}[{index}]"
            leaves.update(flatten_numeric(child, path))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    return leaves


#: Context sections that must match for a two-file diff to be meaningful.
CONTEXT_KEYS = ("shape", "hardware")


def context_warnings(baseline: Dict[str, object], candidate: Dict[str, object]) -> List[str]:
    """Human-readable mismatches between two runs' measurement contexts.

    Compares the raw (unflattened) ``shape`` and ``hardware`` sections; a
    section missing from either side is only a mismatch if the other side
    has it (old artifacts predate the ``hardware`` section).
    """
    warnings: List[str] = []
    for key in CONTEXT_KEYS:
        old, new = baseline.get(key), candidate.get(key)
        if old is None and new is None:
            continue
        if old != new:
            warnings.append(
                f"warning: {key} context differs between runs "
                f"({json.dumps(old, sort_keys=True)} vs "
                f"{json.dumps(new, sort_keys=True)}); "
                f"wall-clock changes may reflect the context, not the code"
            )
    return warnings


def compare(baseline: Dict[str, float], candidate: Dict[str, float]) -> str:
    """Render a side-by-side comparison of two flattened metric maps."""
    shared = sorted(set(baseline) & set(candidate))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))

    width = max((len(path) for path in shared), default=20)
    lines = [f"{'metric':<{width}} {'baseline':>14} {'candidate':>14} {'change':>9}"]
    for path in shared:
        old, new = baseline[path], candidate[path]
        if old != 0:
            change = f"{(new - old) / abs(old) * 100.0:+8.1f}%"
        else:
            change = "    n/a" if new != 0 else "   +0.0%"
        lines.append(f"{path:<{width}} {old:>14.6g} {new:>14.6g} {change:>9}")
    for path in only_base:
        lines.append(f"{path:<{width}} {baseline[path]:>14.6g} {'-':>14} {'removed':>9}")
    for path in only_cand:
        lines.append(f"{path:<{width}} {'-':>14} {candidate[path]:>14.6g} {'added':>9}")
    return "\n".join(lines)


#: Headline columns for the trajectory table: (heading, dotted path, scale).
_HEADLINE: Tuple[Tuple[str, str, float], ...] = (
    ("batched q/s", "wall_clock.batched_qps", 1.0),
    ("speedup", "wall_clock.batched_vs_sequential_speedup", 1.0),
    ("records/s", "wall_clock.records_per_second", 1.0),
    ("p50 us", "simulated_impir.p50_latency_seconds", 1e6),
    ("p99 us", "simulated_impir.p99_latency_seconds", 1e6),
)


def load_history(directory: str) -> List[Tuple[str, Dict[str, float]]]:
    """The ``BENCH_*.json`` artifacts in ``directory``, oldest first.

    Ordered by file modification time (ties broken by name): archives are
    written as runs happen, so mtime order is the run order.  Returns
    ``(label, flattened metrics)`` pairs; unreadable files raise.
    """
    paths = sorted(
        glob.glob(os.path.join(directory, "BENCH_*.json")),
        key=lambda path: (os.path.getmtime(path), path),
    )
    history = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        label = data.get("tag") or os.path.basename(path)
        history.append((str(label), flatten_numeric(data)))
    return history


def render_trajectory(history: List[Tuple[str, Dict[str, float]]]) -> str:
    """One headline-metrics row per archived run, oldest first."""
    width = max(max(len(label) for label, _ in history), len("run"))
    header = f"{'run':<{width}}" + "".join(
        f" {heading:>14}" for heading, _, _ in _HEADLINE
    )
    lines = [header]
    for label, flat in history:
        cells = []
        for _, path, scale in _HEADLINE:
            value = flat.get(path)
            cells.append(
                f" {value * scale:>14,.2f}" if value is not None else f" {'-':>14}"
            )
        lines.append(f"{label:<{width}}" + "".join(cells))
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) == 1 and os.path.isdir(argv[0]):
        try:
            history = load_history(argv[0])
        except (OSError, ValueError) as error:
            print(f"cannot read history in {argv[0]}: {error}", file=sys.stderr)
            return 2
        if not history:
            print(f"no BENCH_*.json artifacts in {argv[0]}", file=sys.stderr)
            return 1
        try:
            print(render_trajectory(history))
            if len(history) > 1:
                first, last = history[0], history[-1]
                print()
                print(f"full diff, {first[0]} -> {last[0]}:")
                print(compare(first[1], last[1]))
        except BrokenPipeError:
            return 0
        return 0
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw = []
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw.append(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 2
    for warning in context_warnings(raw[0], raw[1]):
        print(warning, file=sys.stderr)
    baseline, candidate = (flatten_numeric(data) for data in raw)
    if not set(baseline) & set(candidate):
        print("the two files share no numeric metrics", file=sys.stderr)
        return 1
    try:
        print(compare(baseline, candidate))
    except BrokenPipeError:
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
