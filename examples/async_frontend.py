#!/usr/bin/env python3
"""Asyncio frontend: real max-wait timers and concurrent fleet dispatch.

The batching :class:`~repro.pir.frontend.PIRFrontend` runs on a simulated
clock — perfect for deterministic tests, useless in front of live traffic,
where a lone request must flush once its wait elapses and the two replica
fleets should be scanned at the same time.  This walkthrough drives the
wall-clock :class:`~repro.pir.async_frontend.AsyncPIRFrontend` instead:

1. a burst of concurrent submitters (``asyncio.gather``) splits into size
   batches, each fanned out to both replicas concurrently
   (``asyncio.to_thread`` per replica) — recorded in-flight windows prove
   the overlap;
2. a lone straggler flushes on the *real* max-wait timer, with no follow-up
   arrival needed;
3. the same request stream through the simulated-clock frontend returns
   bit-identical records (both frontends share one flush pipeline);
4. the replicas are sharded fleets running the ``threads`` executor, so the
   per-shard scans inside each replica overlap too.

Run:  python examples/async_frontend.py
"""

from __future__ import annotations

import asyncio
import time

from repro.common.units import format_seconds
from repro.dpf.prf import make_prg
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.shard import ShardedServer


class RecordingReplica:
    """Delegates to a replica fleet, recording each batch's wall-clock window."""

    def __init__(self, inner, hold_seconds: float = 0.02) -> None:
        self._inner = inner
        self._hold_seconds = hold_seconds
        self.server_id = inner.server_id
        self.windows = []

    def answer_batch(self, queries):
        start = time.monotonic()
        time.sleep(self._hold_seconds)  # make the overlap visible at any scale
        result = self._inner.answer_batch(queries)
        self.windows.append((start, time.monotonic()))
        return result


def make_client(database: Database, seed: int) -> PIRClient:
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def make_fleets(database: Database):
    return [
        ShardedServer(database, server_id=i, num_shards=4, executor="threads")
        for i in (0, 1)
    ]


def main() -> None:
    database = Database.random(num_records=1024, record_size=32, seed=37)
    burst = [5, 300, 5, 900, 77, 1023]
    straggler = 512
    print(
        f"database: {database.num_records} records of {database.record_size} B, "
        f"two sharded fleets (threads executor) behind an asyncio frontend\n"
    )

    replicas = [RecordingReplica(fleet) for fleet in make_fleets(database)]
    frontend = AsyncPIRFrontend(
        make_client(database, seed=13),
        replicas,
        policy=BatchingPolicy(max_batch_size=3, max_wait_seconds=0.05),
    )

    async def drive():
        # --- 1. concurrent submitters batch on size --------------------------
        records = await asyncio.gather(*(frontend.submit(i) for i in burst))
        # --- 2. a lone straggler flushes on the real timer --------------------
        start = time.monotonic()
        lone = await frontend.submit(straggler)
        return records, lone, time.monotonic() - start

    records, lone, lone_wait = asyncio.run(drive())
    assert records == [database.record(i) for i in burst]
    assert lone == database.record(straggler)
    print(f"burst of {len(burst)} concurrent submitters: every record verified")
    print(
        f"straggler flushed by the max-wait timer after "
        f"{format_seconds(lone_wait)} with no follow-up arrival"
    )
    print(f"flush reasons: {frontend.metrics.flush_reasons}")

    # --- replica fan-out genuinely overlapped ---------------------------------
    for window_a, window_b in zip(replicas[0].windows, replicas[1].windows):
        assert max(window_a[0], window_b[0]) < min(window_a[1], window_b[1])
    print(
        f"replica dispatch overlapped in all {len(replicas[0].windows)} batches "
        f"(recorded in-flight windows)\n"
    )

    # --- 3. bit-identical to the simulated-clock frontend ---------------------
    sync_frontend = PIRFrontend(
        make_client(database, seed=13),
        make_fleets(database),
        policy=BatchingPolicy(max_batch_size=3),
    )
    sync_records = sync_frontend.retrieve_batch(burst + [straggler])
    assert sync_records == records + [lone]
    print(
        "sync frontend cross-check: same request stream, bit-identical records "
        "(both frontends share one flush pipeline)"
    )
    print("\nasync frontend verified: timers, concurrency and equivalence")


if __name__ == "__main__":
    main()
