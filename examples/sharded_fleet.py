#!/usr/bin/env python3
"""Replica fleets: sharding the database with capability-aware placement.

PR 1 unified the five server variants behind one engine; this example climbs
one more layer.  A :class:`~repro.shard.plan.ShardPlan` partitions the
database into contiguous block-aligned shards, a
:class:`~repro.shard.backend.ShardedServer` composes one child backend per
shard behind the ordinary ``PIRBackend`` protocol, and a
:class:`~repro.shard.fleet.FleetRouter` turns each of the two privacy
replicas into a *fleet* whose shards land on the cheapest capable backend
kind — hot shards on preloaded PIM, cold shards on streamed IM-PIR.

The walkthrough:

1. shard a database three ways over every backend kind and verify the
   answers stay bit-identical to the unsharded scan;
2. measure shard heats from a skewed query trace and let the placement
   split hot from cold shards;
3. retrieve a batch through the resulting fleets (with answer dedup on) and
   verify every record;
4. apply a bulk update and show it touches only the owning shard.

Run:  python examples/sharded_fleet.py
"""

from __future__ import annotations

from repro.common.units import format_seconds
from repro.core.engine import create_server
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard import (
    BARE_BACKEND_KINDS,
    FleetRouter,
    ShardPlan,
    ShardedServer,
    heats_from_trace,
    render_placements,
)


def make_client(database: Database, seed: int) -> PIRClient:
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def main() -> None:
    database = Database.random(num_records=1024, record_size=32, seed=29)
    print(
        f"database: {database.num_records} records of {database.record_size} B, "
        f"sharded across replica fleets\n"
    )

    # --- 1. sharded == unsharded, for every backend kind -------------------------
    reference = create_server("reference", database)
    index = 777
    print("sharded retrieval is bit-identical to the unsharded scan:")
    for kind in BARE_BACKEND_KINDS:
        client = make_client(database, seed=3)
        sharded = ShardedServer(
            database, num_shards=3, child_kind=kind, prg=make_prg("numpy")
        )
        query = client.query(index)[0]
        sharded_payload = sharded.engine.answer(query).answer.payload
        assert sharded_payload == reference.engine.answer(query).answer.payload, kind
        caps = sharded.engine.backend.capabilities()
        print(f"  {kind:>16}: 3 shards agree ({caps.description})")

    # --- 2. heats from a skewed trace drive the placement -------------------------
    plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
    trace = [5] * 80 + [300] * 40 + [900]  # shards 0/1 hot, shard 3 barely warm
    heats = heats_from_trace(plan, trace)
    router = FleetRouter(
        make_client(database, seed=11),
        database,
        plan,
        heats,
        policy=BatchingPolicy(max_batch_size=6),
        dedup=True,  # trusted-aggregator deployment: identical indices scanned once
    )
    print("\ncapability-aware placement (hot -> preloaded, cold -> streamed):")
    for line in render_placements(router.placements):
        print(f"  {line}")
    kinds = set(router.placement_kinds())
    assert len(kinds) == 2, "expected hot and cold shards on different kinds"

    # --- 3. batched retrieval through the fleets ----------------------------------
    indices = [5, 5, 300, 900, 5, 1023]
    records = router.retrieve_batch(indices)
    assert records == [database.record(i) for i in indices]
    metrics = router.metrics
    print(
        f"\nfleet batch: {len(indices)} requests "
        f"({metrics.deduped_requests} answered by dedup), "
        f"makespan {format_seconds(metrics.total_makespan_seconds)}, "
        f"cluster utilization {metrics.last_cluster_utilization:.2f}"
    )

    # --- 4. updates touch only the owning shard -----------------------------------
    fleet = router.fleets[0]
    dirty_index = 42  # owned by shard 0
    owner = fleet.shard_for_record(dirty_index)
    timer = fleet.apply_updates([(dirty_index, b"\x5a" * database.record_size)])
    print(
        f"\nbulk update of record {dirty_index}: shard {owner.index} re-copied "
        f"({format_seconds(timer.total)}), every other shard untouched"
    )
    client = make_client(fleet.database, seed=19)
    query = client.query(dirty_index)[0]
    updated_reference = create_server("reference", fleet.database)
    assert (
        fleet.engine.answer(query).answer.payload
        == updated_reference.engine.answer(query).answer.payload
    )
    print("\nsharded fleet verified: placement, retrieval, dedup and updates")


if __name__ == "__main__":
    main()
