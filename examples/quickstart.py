#!/usr/bin/env python3
"""Quickstart: private retrieval with IM-PIR on a simulated UPMEM platform.

The script walks the complete flow of the paper's Algorithm 1:

1. build a database of 32-byte hash records (the paper's record format);
2. stand up two IM-PIR servers, each on its own simulated PIM platform, with
   the database preloaded into DPU MRAM;
3. have the client encode a query as a pair of DPF keys, one per server;
4. let each server evaluate its key (host CPU), run the dpXOR kernel on its
   DPUs and return a sub-result;
5. reconstruct the record client-side and verify it, printing the simulated
   per-phase cost of the query on the way.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, IMPIRConfig, IMPIRDeployment
from repro.common.units import format_bytes, format_seconds
from repro.pim.config import scaled_down_config


def main() -> None:
    # A small database so the functional simulation stays instant; the record
    # format (32-byte hashes) matches the paper's evaluation databases.
    database = Database.random(num_records=8192, record_size=32, seed=42)
    print(f"database: {database.num_records} records of {database.record_size} B "
          f"({format_bytes(database.size_bytes)})")

    # A scaled-down UPMEM platform: 8 DPUs with 4 tasklets each.  Swap in
    # IMPIRConfig() (no arguments) to cost queries on the paper's full
    # 2,048-DPU platform instead.
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
    deployment = IMPIRDeployment(database, config=config, client_seed=7)
    print(f"platform: {config.pim.num_dpus} DPUs x {config.pim.dpu.tasklets} tasklets, "
          f"{format_bytes(config.pim.total_mram_bytes)} MRAM")

    # --- single private retrieval -------------------------------------------------
    index = 4242
    record = deployment.retrieve(index)
    assert record == database.record(index)
    print(f"\nretrieved record {index} privately: {record.hex()[:32]}... (verified)")

    # --- look inside one server's query execution -----------------------------------
    queries = deployment.client.query(index)
    result = deployment.servers[0].answer(queries[0])
    print("\nserver 0 phase breakdown (simulated time):")
    for phase, seconds in result.breakdown.items():
        share = seconds / result.latency_seconds * 100.0
        print(f"  {phase:>16}: {format_seconds(seconds):>12}  ({share:5.1f}%)")
    print(f"  {'total':>16}: {format_seconds(result.latency_seconds):>12}")

    # --- a batch of queries through the batching frontend ---------------------------
    # retrieve_batch goes through the PIRFrontend: requests aggregate under the
    # batching policy, fan out to both replicas' Fig. 8 pipelines, and the
    # answers are re-paired by request id before reconstruction.
    indices = [1, 17, 4242, 8000, 8191]
    records = deployment.retrieve_batch(indices)
    assert all(rec == database.record(i) for rec, i in zip(records, indices))
    metrics = deployment.frontend.metrics
    print(f"\nfrontend batch of {len(indices)}: "
          f"{metrics.batches_dispatched} dispatch(es), "
          f"makespan {format_seconds(metrics.total_makespan_seconds)}, "
          f"throughput {metrics.throughput_qps:.1f} queries/s (simulated), "
          f"cluster utilization {metrics.last_cluster_utilization * 100:.0f}%")

    print("\ncommunication per query:")
    print(f"  upload   (per server): {queries[0].upload_bytes} B (DPF key)")
    print(f"  download (per server): {database.record_size} B (XOR sub-result)")


if __name__ == "__main__":
    main()
