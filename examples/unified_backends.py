#!/usr/bin/env python3
"""One query, every backend: the unified engine/backend/frontend layering.

All five server variants — the reference numpy scan, the CPU and GPU
baselines, preloaded IM-PIR and streamed IM-PIR — answer through the same
:class:`~repro.core.engine.QueryEngine`.  This example walks the registry:

1. build two replicas of every registered backend over one database;
2. answer the same DPF query pair through each variant's engine and verify
   the reconstructed record is bit-identical everywhere;
3. run a batched retrieval through a :class:`~repro.pir.frontend.PIRFrontend`
   per backend and compare the simulated scheduling metrics.

Run:  python examples/unified_backends.py
"""

from __future__ import annotations

from repro.common.units import format_seconds
from repro.core.engine import available_backends, create_server
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend


def main() -> None:
    database = Database.random(num_records=2048, record_size=32, seed=13)
    index = 1337
    print(f"database: {database.num_records} records of {database.record_size} B; "
          f"retrieving record {index} on every backend\n")

    # --- the same retrieval through every registered backend ------------------------
    reconstructed = {}
    for name in available_backends():
        kwargs = {"segment_records": 512} if name == "im-pir-streamed" else {}
        client = PIRClient(database.num_records, database.record_size,
                           seed=5, prg=make_prg("numpy"))
        replicas = [create_server(name, database, server_id=i, **kwargs) for i in (0, 1)]
        queries = client.query(index)
        results = [replicas[q.server_id].engine.answer(q) for q in queries]
        record = client.reconstruct([r.answer for r in results])
        reconstructed[name] = record
        caps = replicas[0].engine.backend.capabilities()
        latency = results[0].breakdown.total
        print(f"  {caps.name:>16}: lanes={caps.lanes} preloaded={caps.preloaded!s:>5} "
              f"latency={'untimed' if latency == 0 else format_seconds(latency)}")

    assert len(set(reconstructed.values())) == 1, "backends disagree!"
    assert reconstructed["im-pir"] == database.record(index)
    print(f"\nall {len(reconstructed)} backends reconstruct the same record (verified)")

    # --- batched retrieval through the frontend, per backend -------------------------
    indices = [0, 512, 1024, 1536, 2047, 3, 700, 1999]
    print(f"\nfrontend batch of {len(indices)} requests per backend:")
    for name in available_backends():
        kwargs = {"segment_records": 512} if name == "im-pir-streamed" else {}
        frontend = PIRFrontend(
            PIRClient(database.num_records, database.record_size,
                      seed=7, prg=make_prg("numpy")),
            [create_server(name, database, server_id=i, **kwargs) for i in (0, 1)],
            policy=BatchingPolicy(max_batch_size=4),
        )
        records = frontend.retrieve_batch(indices)
        assert records == [database.record(i) for i in indices]
        metrics = frontend.metrics
        makespan = metrics.total_makespan_seconds
        print(f"  {name:>16}: {metrics.batches_dispatched} batches, "
              f"makespan {'untimed' if makespan == 0 else format_seconds(makespan)}, "
              f"flushes {dict(metrics.flush_reasons)}")
    print("\nevery batch paired, reconstructed and verified through one code path")


if __name__ == "__main__":
    main()
