#!/usr/bin/env python3
"""SLOs closing the loop: burn-rate alerts, escalated scaling, a black box.

The observability hub can *judge* the fleet, not just describe it.  This
example declares a latency SLO over a controlled fleet, injects a replica
straggler mid-run, and watches the whole loop turn:

1. calm traffic — the SLO engine's streaming digest tracks rolling
   p50/p95/p99, the error budget sits untouched;
2. an injected +50 ms stall on every replica answer — the fast-burn rule
   (8x budget burn over both a 0.8 s and a 0.2 s window, Google-SRE style)
   fires a paging alert and the flight recorder freezes an incident bundle;
3. the control plane reads the health signal — the autoscaler scales up
   immediately (``reason="slo-escalated"``, no sustain streak) and the
   rebalancer holds cosmetic reshapes while the budget burns;
4. the fault clears — the alert resolves once the short window drains, and
   the deferred scale-down finally lands;
5. the incident bundle — deterministic JSON with the last events, metric
   snapshot, topology version and active alerts — is validated and probed.

The data path never notices any of it: retrieved records are bit-identical
to an uninstrumented static fleet (asserted below).

Run:  python examples/slo_alerting.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.control.autoscaler import AutoscalePolicy
from repro.control.plane import controlled_fleet
from repro.dpf.prf import make_prg
from repro.obs import (
    BurnRateRule,
    FlightRecorder,
    ObservabilityHub,
    SloObjective,
    SloPolicy,
    validate_bundle,
)
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard.fleet import FleetRouter, heats_from_trace
from repro.shard.plan import ShardPlan
from repro.workloads.traces import zipf_trace


class StragglingReplica:
    """Wraps a replica group; stretches reported latency while active."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.penalty_seconds = 0.0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def answer_batch(self, queries):
        result = self._inner.answer_batch(queries)
        if self.penalty_seconds > 0.0:
            for item in result.results:
                base = item.answer.simulated_seconds
                if base is None and item.breakdown is not None:
                    base = item.breakdown.total
                item.answer = replace(
                    item.answer,
                    simulated_seconds=(base or 0.0) + self.penalty_seconds,
                )
                if item.breakdown is not None:
                    item.breakdown.record("induced_stall", self.penalty_seconds)
        return result


def main() -> None:
    num_records, record_size, seed = 512, 32, 21
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)

    calm = list(zipf_trace(num_records, 96, exponent=1.2, seed=seed + 1))
    faulted = list(zipf_trace(num_records, 96, exponent=1.2, seed=seed + 2))
    recovery = list(zipf_trace(num_records, 128, exponent=1.2, seed=seed + 3))
    stream = calm + faulted + recovery
    gap = 0.02
    seed_heats = heats_from_trace(
        plan,
        calm,
        arrival_seconds=[gap * i for i in range(len(calm))],
        window_seconds=0.2,
        decay=0.5,
    )
    batching = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)

    # --- declare the SLO -----------------------------------------------------------
    slo = SloPolicy(
        objectives=(
            SloObjective("latency-p95", target=0.95, latency_threshold_seconds=0.005),
            SloObjective("availability", target=0.999),
        ),
        rules=(
            BurnRateRule("fast", 0.8, 0.2, burn_threshold=8.0, escalate=True),
            BurnRateRule("slow", 3.2, 0.8, burn_threshold=2.0),
        ),
        bucket_seconds=0.05,
        digest_window_seconds=2.0,
    )
    hub = ObservabilityHub(slo=slo)
    print("objectives:")
    for objective in slo.objectives:
        print(f"  {objective.describe()}")

    # --- build the controlled fleet (hub wires the health loop) ---------------------
    router, plane = controlled_fleet(
        PIRClient(num_records, record_size, seed=seed + 6, prg=make_prg("numpy")),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        split_heat_share=0.5,
        merge_heat_floor=1.0,
        min_shards=2,
        max_shards=8,
        autoscale=AutoscalePolicy(
            target_heat_per_replica=1000.0,  # bands never trigger: any
            min_replicas=1,                  # scale-up is the alert path
            max_replicas=2,
            sustain_passes=2,
            evaluation_interval_seconds=0.2,
            cooldown_seconds=1.0,
        ),
        policy=batching,
        hub=hub,
    )
    stragglers = [StragglingReplica(group) for group in router.replicas]
    router.replicas[:] = stragglers

    # --- drive calm -> fault -> recovery --------------------------------------------
    request_ids = []
    now = 0.0
    for label, indices, stall in (
        ("calm", calm, 0.0),
        ("fault (+50ms per answer)", faulted, 0.05),
        ("recovery", recovery, 0.0),
    ):
        for straggler in stragglers:
            straggler.penalty_seconds = stall
        print(f"\nphase: {label} — {len(indices)} requests from t={now:.2f}s")
        for index in indices:
            request_ids.append(router.submit(index, arrival_seconds=now))
            now += gap
    router.close()
    records = [router.take_record(request_id) for request_id in request_ids]

    # --- what the judgement layer saw ------------------------------------------------
    engine = hub.slo
    print("\nalert timeline:")
    for alert in engine.history:
        print(f"  {alert.describe()}")
    assert any(a.severity == "fast" for a in engine.history), "no fast-burn alert"
    assert not engine.active, "alerts should have resolved after recovery"

    print("\nautoscaler actions:")
    for action in plane.autoscaler.actions:
        print(f"  {action.describe()}")
    assert any(a.reason == "slo-escalated" for a in plane.autoscaler.actions)

    held = [
        verdict
        for report in plane.reports
        for verdict in report.suppressed
        if verdict.reason == "slo-burn"
    ]
    print(f"\nreshapes held while burning: {len(held)}")
    for verdict in held[:3]:
        print(f"  {verdict.describe()}")

    # --- the incident bundle ---------------------------------------------------------
    bundles = hub.recorder.incidents
    assert bundles, "alert-fire should have frozen an incident bundle"
    for bundle in bundles:
        validate_bundle(bundle)
    first = bundles[0]
    print(
        f"\nincident bundle: trigger={first['trigger']} at t={first['now']:.2f}s, "
        f"topology v{first['topology_version']}, "
        f"{len(first['active_alerts'])} active alert(s), "
        f"{len(first['events'])} event(s), "
        f"{len(FlightRecorder.dump(first))} canonical JSON bytes"
    )

    # --- the data plane never noticed -----------------------------------------------
    static = FleetRouter(
        PIRClient(num_records, record_size, seed=seed + 6, prg=make_prg("numpy")),
        database,
        plan,
        seed_heats,
        policy=batching,
    )
    assert records == static.retrieve_batch(stream)
    print(
        f"\n{len(records)} records bit-identical to an uninstrumented static "
        f"fleet — the SLO layer observed, judged, and scaled without touching "
        f"a single payload byte"
    )


if __name__ == "__main__":
    main()
