#!/usr/bin/env python3
"""The closed-loop autoscaler: damped reshapes and replica-elastic fleets.

PR 5's control plane can reshape the topology and migrate shards between
backend kinds, but every proposal it liked was executed immediately — a
borderline workload could make the fleet flap — and the replica count per
trust domain was frozen at build time.  This example walks the PR 8 loop
that closes both gaps:

1. cost-aware damping: a :class:`~repro.control.ReshapeDamper` charges
   each proposed reshape its transfer cost against the projected
   per-window saving (amortized within a horizon) and holds a per-range
   cooldown, so borderline actions are suppressed instead of executed;
2. replica elasticity: :meth:`~repro.shard.FleetRouter.stage_replicas` /
   ``commit_replicas`` bring a new replica per trust domain online from a
   snapshot plus a journaled update replay, and ``drain_replica`` takes
   one down — retrievals stay bit-identical throughout;
3. the closed loop: a calm → surge → cool-down Zipf stream through
   :func:`~repro.control.controlled_fleet` with an
   :class:`~repro.control.AutoscalePolicy`; sustained utilization scales
   the fleet up and back down, damping suppresses the flappy reshapes,
   and every record still matches a static fleet that never changed.

Run:  python examples/autoscaler.py
"""

from __future__ import annotations

from typing import List

from repro.control import AutoscalePolicy, DampingPolicy, ReshapeDamper, controlled_fleet
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard import FleetRouter, ShardPlan, heats_from_trace
from repro.workloads.traces import zipf_trace

NUM_RECORDS = 512
RECORD_SIZE = 32


def make_client(seed: int) -> PIRClient:
    return PIRClient(NUM_RECORDS, RECORD_SIZE, seed=seed, prg=make_prg("numpy"))


def main() -> None:
    database = Database.random(NUM_RECORDS, RECORD_SIZE, seed=61)

    # --- 1. the damper: is this reshape worth its transfer cost? -------------------
    damper = ReshapeDamper(
        DampingPolicy(amortize_windows=4.0, cooldown_seconds=5.0)
    )
    print("reshape economics (saving amortized over 4 windows vs transfer):")
    proposals = [
        ("merge", 0, 512, -0.003, 0.0),     # merging hot shards costs every query
        ("split", 256, 512, 0.002, 0.010),  # 8 ms never repays 10 ms
        ("split", 0, 256, 0.004, 0.010),   # 4 windows x 4 ms repays 10 ms
    ]
    for action, start, stop, saving, transfer in proposals:
        verdict = damper.judge(action, start, stop, saving, transfer, now=0.0)
        outcome = "allowed" if verdict is None else f"suppressed ({verdict.reason})"
        if verdict is None:
            damper.note_action(0.0, start, stop)
        print(
            f"  {action} [{start}, {stop}): saving {saving * 1e3:+.0f} ms/window, "
            f"transfer {transfer * 1e3:.0f} ms -> {outcome}"
        )
    verdict = damper.judge("merge", 0, 256, 1.0, 0.0, now=2.0)
    assert verdict is not None and verdict.reason == "cooldown"
    print(
        "  merge [0, 256) 2 s after the executed split -> suppressed (cooldown), "
        "whatever its economics"
    )

    # --- 2. replica elasticity is invisible to clients -----------------------------
    plan = ShardPlan.uniform(NUM_RECORDS, 4, block_records=8)
    router = FleetRouter(
        make_client(62),
        database,
        plan,
        heats=[1.0] * 4,
        policy=BatchingPolicy(max_batch_size=4),
    )
    probe = [0, 7, 255, 511]
    before = router.retrieve_batch(probe)

    staged = router.stage_replicas()
    updates = [(7, bytes(RECORD_SIZE))]
    router.apply_updates(updates)  # lands while the snapshot is in flight...
    router.commit_replicas(staged)  # ...and reaches the new member via the journal
    expected = database.with_updates(updates)
    after_add = router.retrieve_batch(probe)
    assert after_add == [expected.record(i) for i in probe]
    print(
        f"\nreplica add: {router.replica_count} replicas per trust domain, "
        f"in-flight update replayed from the journal, "
        f"{len(probe)} probes verified against the database"
    )

    router.drain_replica()
    after_drain = router.retrieve_batch(probe)
    assert after_drain == after_add
    assert before[0] == after_add[0]  # untouched records never moved
    print(
        f"replica drain: back to {router.replica_count} replica per trust "
        f"domain, probes bit-identical across the drain"
    )

    # --- 3. the closed loop under a surge ------------------------------------------
    plan = ShardPlan.uniform(NUM_RECORDS, 4, block_records=8)
    calm = zipf_trace(NUM_RECORDS, 64, exponent=1.2, seed=63)
    surge = zipf_trace(NUM_RECORDS, 160, exponent=1.4, seed=64)
    cool = zipf_trace(NUM_RECORDS, 64, exponent=1.2, seed=65)
    stream = list(calm) + list(surge) + list(cool)
    arrivals: List[float] = []
    now = 0.0
    for gap, phase in ((0.05, calm), (0.005, surge), (0.05, cool)):
        for _ in phase:
            arrivals.append(now)
            now += gap
    seed_heats = heats_from_trace(
        plan,
        list(calm),
        arrival_seconds=arrivals[: len(calm)],
        window_seconds=0.2,
        decay=0.5,
    )

    policy = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)
    static = FleetRouter(
        make_client(66), database, plan, seed_heats, policy=policy
    )
    static_records = static.retrieve_batch(stream)

    router, plane = controlled_fleet(
        make_client(66),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        split_heat_share=0.5,
        merge_heat_floor=5.0,
        min_shards=2,
        max_shards=8,
        damping=DampingPolicy(amortize_windows=4.0, cooldown_seconds=0.4),
        autoscale=AutoscalePolicy(
            target_heat_per_replica=10.0,
            scale_up_utilization=0.8,
            scale_down_utilization=0.3,
            min_replicas=1,
            max_replicas=2,
            sustain_passes=2,
            evaluation_interval_seconds=0.2,
        ),
        dedup=True,
        policy=policy,
    )
    request_ids = [
        router.submit(index, arrival_seconds=arrival)
        for index, arrival in zip(stream, arrivals)
    ]
    router.close()
    live_records = [router.take_record(request_id) for request_id in request_ids]
    assert live_records == static_records

    ups = [a for a in plane.autoscaler.actions if a.direction == "up"]
    downs = [a for a in plane.autoscaler.actions if a.direction == "down"]
    assert ups and downs
    assert plane.rebalancer.total_suppressed >= 1
    assert router.replica_count == 1

    print(
        f"\nclosed loop over {len(stream)} queries "
        f"(calm {len(calm)} / surge {len(surge)} / cool {len(cool)}):"
    )
    for line in plane.describe():
        print(line)
    for action in plane.autoscaler.actions:
        print("  " + action.describe())
    print(
        f"{len(stream)} records bit-identical to the static fleet across "
        f"{len(ups)} scale-up(s), {len(downs)} scale-down(s) and "
        f"{plane.rebalancer.total_suppressed} damped reshape(s)"
    )


if __name__ == "__main__":
    main()
