#!/usr/bin/env python3
"""The topology lifecycle: versioned plans, online split/merge, heat remap.

PR 4's control plane moves shards between backend *kinds*, but the shard
boundaries themselves were frozen at build time — a single scorching-hot
shard stayed one indivisible scan unit no matter how skewed the workload.
This example walks the machinery that makes the topology itself follow the
heat:

1. pure plan transforms: :meth:`~repro.shard.plan.ShardPlan.split_shard` /
   :meth:`~repro.shard.plan.ShardPlan.merge_shards` return a new versioned
   plan plus a :class:`~repro.shard.plan.TopologyChange` mapping;
2. an atomic data-plane swap:
   :meth:`~repro.shard.backend.ShardedBackend.apply_topology` prepares
   fresh children for the changed ranges off to the side, reuses the rest,
   and installs plan + members in one reference assignment — retrievals
   are bit-identical before, during and after;
3. telemetry that survives the reshape:
   :meth:`~repro.control.telemetry.HeatTracker.remap` divides heat by the
   measured record rates on a split and sums it on a merge;
4. the closed loop: a controlled fleet under a drifting Zipf stream splits
   its hot shard at the in-shard heat median, merges the shards going
   cold, and still returns records byte-identical to a static fleet.

Run:  python examples/topology_reshape.py
"""

from __future__ import annotations

from repro.control import HeatTracker, controlled_fleet
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.shard import ShardPlan, ShardedServer, bare_backend_factory, heats_from_trace
from repro.workloads.traces import zipf_trace


def make_client(database: Database, seed: int) -> PIRClient:
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def main() -> None:
    database = Database.random(num_records=512, record_size=32, seed=41)

    # --- 1. pure transforms on a versioned plan ------------------------------------
    plan = ShardPlan.uniform(database.num_records, 2, block_records=8)
    split = plan.split_shard(0, 64)
    print(f"v{plan.version}: {plan!r}")
    print(f"split shard 0 at 64 -> v{split.new_plan.version}: {split.new_plan!r}")
    print(
        f"  mapping: unchanged={dict(split.unchanged_pairs())}, "
        f"fresh children for new shards {list(split.changed_new_indices())}"
    )
    merged = split.new_plan.merge_shards(0, 1)
    overall = split.compose(merged)
    assert overall.new_plan.same_boundaries(plan)
    print(
        f"merge back -> v{merged.new_plan.version} "
        f"(same boundaries, version never rewinds)"
    )

    # --- 2. the atomic swap keeps retrievals bit-identical ---------------------------
    replicas = [
        ShardedServer(
            database,
            server_id=i,
            plan=plan,
            child_factory=bare_backend_factory("reference"),
        )
        for i in (0, 1)
    ]
    frontend = PIRFrontend(
        make_client(database, seed=43),
        replicas,
        policy=BatchingPolicy(max_batch_size=4),
    )
    probe = [0, 63, 64, 511]
    before = frontend.retrieve_batch(probe)
    for replica in replicas:
        replica.apply_topology(replica.plan.split_shard(0, 64))
    after = frontend.retrieve_batch(probe)
    assert before == after == [database.record(i) for i in probe]
    print(
        f"\nlive split applied to both replica fleets: {len(probe)} probes "
        f"bit-identical across the swap (plan v{replicas[0].plan.version}, "
        f"{replicas[0].num_shards} shards)"
    )

    # --- 3. heat survives a reshape ---------------------------------------------------
    tracker = HeatTracker(plan, window_seconds=1.0, decay=0.5)
    tracker.observe_batch([3] * 30 + [100] * 10, now=0.0)
    change = plan.split_shard(0, tracker.split_point(0))
    heats_before = tracker.heats()
    tracker.remap(change)
    print(
        f"\nheat remap across a split at the in-shard median "
        f"({change.new_plan.shards[0].stop}): "
        f"{heats_before} -> {tracker.heats()} (total conserved)"
    )
    assert sum(tracker.heats()) == sum(heats_before)

    # --- 4. the closed loop under drift ----------------------------------------------
    plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
    first, last = plan.shards[0], plan.shards[-1]
    half = 80
    skew = zipf_trace(database.num_records, 2 * half, exponent=1.4, seed=47)
    offsets = [first.start] * half + [last.start] * half
    stream = [
        (offset + index) % database.num_records
        for offset, index in zip(offsets, skew)
    ]
    seed_heats = heats_from_trace(
        plan,
        stream[:half],
        arrival_seconds=[0.02 * i for i in range(half)],
        window_seconds=0.2,
        decay=0.5,
    )
    router, plane = controlled_fleet(
        make_client(database, seed=53),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        split_heat_share=0.5,  # split any shard owning >50% of the heat
        merge_heat_floor=0.5,  # fold neighbours idling below 0.5 q/window
        min_shards=2,
        max_shards=8,
        policy=BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0),
    )
    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02
    router.close()
    records = [router.take_record(request_id) for request_id in request_ids]
    assert records == [database.record(i) for i in stream]
    rebalancer = plane.rebalancer
    assert rebalancer.total_splits >= 1 and rebalancer.total_merges >= 1
    print(
        f"\ndrifting Zipf through the plan-shape policy: "
        f"{rebalancer.total_splits} split(s), {rebalancer.total_merges} "
        f"merge(s), {rebalancer.total_migrations} kind migration(s)"
    )
    for line in plane.describe():
        print(f"  {line}")
    print(f"\nfinal topology: {router.plan!r}")
    print(
        f"{len(stream)} records verified bit-for-bit across every plan "
        f"version (v0 -> v{router.plan.version})"
    )


if __name__ == "__main__":
    main()
