#!/usr/bin/env python3
"""Private compromised-credential checking (Have-I-Been-Pwned style).

Breach-notification services hold SHA-256 hashes of leaked passwords.  A
password manager wants to warn users whose credentials appear in the corpus —
without shipping the credential (or even a hash prefix) to the service.  With
the corpus replicated on two non-colluding IM-PIR servers, the check becomes
a PIR query: the servers learn nothing about which entry was fetched, and the
client compares the retrieved hash locally.

Run:  python examples/credential_checking.py
"""

from __future__ import annotations

from repro import IMPIRConfig
from repro.core.impir import IMPIRServer
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.workloads.credentials import CompromisedCredentialCorpus


def main() -> None:
    corpus = CompromisedCredentialCorpus(num_credentials=8192)
    database = corpus.build_database()
    print(f"breach corpus: {database.num_records} hashed credentials "
          f"({database.size_bytes / 2**20:.1f} MB)")

    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
    servers = [IMPIRServer(database, config=config, server_id=i) for i in (0, 1)]
    client = PIRClient(
        num_records=database.num_records,
        record_size=database.record_size,
        prg=make_prg("numpy"),
        seed=99,
    )

    # A mix of credentials that are in the corpus (hits) and fresh ones (misses).
    trace, candidates, expected = corpus.check_trace(num_checks=10, hit_fraction=0.5, seed=17)
    print(f"checking {len(candidates)} credentials privately...\n")

    correct = 0
    for index, candidate, should_hit in zip(trace.indices, candidates, expected):
        queries = client.query(index)
        answers = [servers[q.server_id].answer(q).answer for q in queries]
        retrieved_hash = client.reconstruct(answers)
        compromised = corpus.is_compromised(candidate, retrieved_hash)
        correct += compromised == should_hit
        label = "COMPROMISED" if compromised else "not found"
        print(f"  {candidate.decode():>28}: {label:>12} "
              f"({'expected' if compromised == should_hit else 'UNEXPECTED'})")

    print(f"\n{correct}/{len(candidates)} verdicts correct")
    print("the servers saw only DPF keys — never a credential, hash, or index")

    # Batch mode: the password manager checks a whole vault at once.
    vault_queries = [client.query(i)[0] for i in trace.indices]
    batch = servers[0].answer_batch(vault_queries)
    print(f"\nbatched vault check on server 0: {batch.batch_size} queries, "
          f"simulated makespan {batch.latency_seconds * 1e3:.2f} ms, "
          f"throughput {batch.throughput_qps:.0f} queries/s")


if __name__ == "__main__":
    main()
