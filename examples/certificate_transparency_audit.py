#!/usr/bin/env python3
"""Private certificate-transparency auditing with IM-PIR.

Certificate-transparency (CT) logs publish the SHA-256 digests of every
issued TLS certificate.  Auditors and domain owners look up specific entries
— but a plaintext lookup tells the log operator exactly which domains someone
is investigating.  Running the lookup as a PIR query removes that leakage:
the log is replicated on two non-colluding servers and neither learns which
certificate was checked.

The script builds a synthetic CT log, serves it through two IM-PIR servers,
runs an audit trace skewed toward recently issued certificates, and verifies
every retrieved digest against the log.

Run:  python examples/certificate_transparency_audit.py
"""

from __future__ import annotations

from repro import IMPIRConfig
from repro.common.units import format_seconds
from repro.core.impir import IMPIRServer
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.workloads.certificate_transparency import CertificateTransparencyLog


def main() -> None:
    # Synthetic CT log: 16,384 certificates, one 32-byte digest each.
    log = CertificateTransparencyLog(num_certificates=16384)
    database = log.build_database()
    print(f"CT log: {database.num_records} certificate digests "
          f"({database.size_bytes / 2**20:.1f} MB)")

    # Two replicas operated by independent parties (simulated PIM platforms).
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4), num_clusters=2)
    servers = [IMPIRServer(database, config=config, server_id=i) for i in (0, 1)]
    client = PIRClient(
        num_records=database.num_records,
        record_size=database.record_size,
        prg=make_prg("numpy"),
        seed=2024,
    )

    # An auditor re-checking 12 certificates, biased toward recent issuance.
    trace = log.audit_trace(num_audits=12, seed=5)
    print(f"running {len(trace)} private audit lookups...\n")

    total_upload = 0
    verified = 0
    for position, certificate_index in enumerate(trace):
        queries = client.query(certificate_index)
        total_upload += sum(q.upload_bytes for q in queries)
        answers = [servers[q.server_id].answer(q).answer for q in queries]
        digest = client.reconstruct(answers)
        ok = log.verify_inclusion(database, certificate_index, digest)
        verified += ok
        expected = log.digest_of(certificate_index)[: database.record_size]
        print(f"  audit {position + 1:>2}: cert #{certificate_index:>5}  "
              f"digest {digest.hex()[:16]}...  "
              f"{'MATCHES log' if digest == expected and ok else 'MISMATCH'}")

    print(f"\n{verified}/{len(trace)} audits verified against the log")
    print(f"total upload to both servers: {total_upload} B "
          f"(vs {2 * database.num_records // 8} B for the naive scheme)")

    # What one audited query costs server-side on the paper's full platform.
    from repro.bench.estimators import IMPIREstimator
    from repro.workloads.generator import DatabaseSpec

    paper_scale = DatabaseSpec.from_size_gib(4.0)
    breakdown = IMPIREstimator().query_breakdown(paper_scale)
    print(f"\nprojected single-audit latency on a 4 GB log with 2,048 DPUs: "
          f"{format_seconds(breakdown.total)} "
          f"(eval {breakdown.get('eval') / breakdown.total * 100:.0f}%, "
          f"dpxor {breakdown.get('dpxor') / breakdown.total * 100:.0f}%)")


if __name__ == "__main__":
    main()
