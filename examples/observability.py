#!/usr/bin/env python3
"""The observability layer: structured events, metrics, per-request traces.

The fleet built over PRs 1–6 already *measures* everything — PhaseTimer
breakdowns, frontend metrics, heat windows, rebalance reports — but each
piece lives in its own corner.  This example attaches one
:class:`~repro.obs.hub.ObservabilityHub` and gets all of it through a
single pane: a structured event log (ring buffer + JSONL export), a
Prometheus-style metrics registry, and per-request span traces that
reconstruct the paper's Figure 10 pipeline decomposition (host eval,
CPU→DPU copy, dpXOR, DPU→CPU copy, aggregate) *per individual query*.

The walkthrough:

1. build a controlled fleet with the hub wired in one call
   (``controlled_fleet(..., hub=hub)``), JSONL export included;
2. drive a skewed workload on the simulated clock; every flush becomes an
   event, a metrics fold and one trace per request;
3. verify the three load-bearing properties: records are bit-identical to
   an *uninstrumented* run of the same stream, span totals equal the
   engine's ``PhaseTimer`` totals float-exactly, and the JSONL file holds
   one complete JSON line per exported event;
4. render the hub report: event counts, metrics snapshot, slowest traces.

Run:  python examples/observability.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.control import controlled_fleet
from repro.dpf.prf import make_prg
from repro.obs import ObservabilityHub
from repro.obs.tracing import KIND_PHASE, KIND_SERVER, KIND_SHARD
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard import ShardPlan, heats_from_trace
from repro.workloads.traces import zipf_trace


def make_client(database: Database, seed: int) -> PIRClient:
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def drive(database: Database, stream, hub=None):
    """One controlled fleet over ``stream``; identical with or without a hub."""
    plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
    seed_heats = heats_from_trace(
        plan,
        stream[: len(stream) // 2],
        arrival_seconds=[0.02 * i for i in range(len(stream) // 2)],
        window_seconds=0.2,
        decay=0.5,
    )
    router, plane = controlled_fleet(
        make_client(database, seed=37),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        cache_capacity=16,
        admit_min_heat=1.0,
        dedup=True,
        policy=BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0),
        hub=hub,
    )
    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02
    router.close()
    return [router.take_record(request_id) for request_id in request_ids]


def main() -> None:
    database = Database.random(num_records=512, record_size=32, seed=23)
    half = 80
    skew = zipf_trace(database.num_records, 2 * half, exponent=1.4, seed=31)
    stream = [index % database.num_records for index in skew]

    # --- 1. the hub, wired in one call ---------------------------------------------
    jsonl_path = os.path.join(tempfile.mkdtemp(prefix="repro-obs-"), "events.jsonl")
    hub = ObservabilityHub(jsonl_path=jsonl_path)

    # --- 2. one instrumented run, one bare run of the same stream ------------------
    records = drive(database, stream, hub=hub)
    hub.close()
    bare_records = drive(database, stream, hub=None)

    # --- 3. the load-bearing properties --------------------------------------------
    # Telemetry is strictly read-only: the instrumented data plane returns
    # bit-identical bytes.
    assert records == bare_records == [database.record(i) for i in stream]

    # Span totals equal the engine's PhaseTimer totals float-exactly: both
    # are the same left-to-right sum over the same phase values.
    checked = 0
    for trace in hub.tracer.traces():
        for server in trace.root.find(KIND_SERVER):
            engine_seconds = server.labels.get("engine_seconds")
            if engine_seconds is None:
                continue
            assert server.seconds == engine_seconds, trace.trace_id
            assert server.find(KIND_PHASE), "server spans carry phase leaves"
            checked += 1
    assert checked > 0, "at least one full pipeline trace was reconstructed"

    # The JSONL export holds only complete JSON lines (each line is
    # serialised before its single write), one per exported event.
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == hub.events.events_emitted
    assert all("name" in line and "seq" in line and "now" in line for line in lines)
    assert hub.events.dropped == 0

    shard_spans = sum(
        len(server.find(KIND_SHARD))
        for trace in hub.tracer.traces()
        for server in trace.root.find(KIND_SERVER)
    )
    print(
        f"{len(stream)} records bit-identical to the uninstrumented run; "
        f"{checked} server spans float-equal to their PhaseTimer totals; "
        f"{shard_spans} per-shard scan spans; "
        f"{len(lines)} complete JSONL event lines at {jsonl_path}"
    )

    # --- 4. the report --------------------------------------------------------------
    print()
    print(hub.report(top_n=1))
    print()
    print("observability verified: events, metrics, traces, one hub")


if __name__ == "__main__":
    main()
