#!/usr/bin/env python3
"""The online control plane: heat telemetry, live rebalancing, hot-record cache.

PR 2/3 built a *static* data plane — shards are placed once, from an offline
heat sample, and a drifting workload strands hot shards on streamed backends
forever.  This example turns that fleet into a system that tracks its
workload: a :class:`~repro.control.telemetry.HeatTracker` measures per-shard
query rates in decaying windows (fed by the frontend observe hook), a
:class:`~repro.control.rebalancer.Rebalancer` periodically re-places shards
against the live window and migrates only the diffs, and a
:class:`~repro.control.cache.HotRecordCache` (trusted-aggregator
deployments, ``dedup=True``) serves repeat indices without any replica scan.

The walkthrough:

1. build a controlled fleet whose initial placement is seeded from a sample
   of phase-1 traffic (hot spot in the first shard);
2. drive a drifting Zipf stream — the hot spot jumps to the last shard
   halfway through — on the simulated clock, and watch the control plane
   migrate shards while requests keep flowing;
3. verify every retrieved record bit-for-bit against the database (the
   rebalance is invisible to the protocol);
4. land a bulk update and show the cache drops the dirty index before the
   next retrieval re-reads fresh bytes.

Run:  python examples/control_plane.py
"""

from __future__ import annotations

from repro.control import controlled_fleet
from repro.dpf.prf import make_prg
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy
from repro.shard import ShardPlan, heats_from_trace, render_placements
from repro.workloads.traces import zipf_trace


def make_client(database: Database, seed: int) -> PIRClient:
    return PIRClient(
        database.num_records, database.record_size, seed=seed, prg=make_prg("numpy")
    )


def main() -> None:
    database = Database.random(num_records=512, record_size=32, seed=23)
    plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
    first, last = plan.shards[0], plan.shards[-1]

    # --- 1. a fleet with its control plane attached -------------------------------
    # The drifting workload: Zipf ranks concentrate near 0, so offsetting
    # them pins the hot spot inside a chosen shard; halfway through the
    # stream it jumps from the first shard to the last.
    half = 80
    skew = zipf_trace(database.num_records, 2 * half, exponent=1.4, seed=31)
    offsets = [first.start] * half + [last.start] * half
    stream = [
        (offset + index) % database.num_records
        for offset, index in zip(offsets, skew)
    ]
    # Stamp the sample with the live arrival cadence and the tracker's own
    # window parameters, so seed placement and online rebalancing price
    # heat on the same per-window scale.
    seed_heats = heats_from_trace(
        plan,
        stream[:half],
        arrival_seconds=[0.02 * i for i in range(half)],
        window_seconds=0.2,
        decay=0.5,
    )
    router, plane = controlled_fleet(
        make_client(database, seed=37),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,  # heat windows of 200ms simulated time
        decay=0.5,  # each completed window keeps half the history
        rebalance_interval_seconds=0.4,
        cache_capacity=16,
        admit_min_heat=1.0,  # cold-shard probes never evict hot residents
        dedup=True,  # the cache rides on dedup (trusted-aggregator caveat)
        policy=BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0),
    )
    print("initial placement (seeded from a phase-1 sample):")
    for line in render_placements(router.placements):
        print(f"  {line}")

    # --- 2. live traffic on the simulated clock ------------------------------------
    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02  # arrivals 20ms apart: windows roll, rebalance passes fire
    router.close()

    # --- 3. records are bit-identical across every live migration ------------------
    records = [router.take_record(request_id) for request_id in request_ids]
    assert records == [database.record(i) for i in stream]
    migrations = plane.rebalancer.total_migrations
    assert migrations >= 1, "the drift should have migrated at least one shard"
    assert router.metrics.cache_hits > 0, "the hot spot should hit the cache"
    print(f"\n{len(stream)} records verified across {migrations} live migration(s):")
    for line in plane.describe():
        print(f"  {line}")
    print("\nplacement after the drift (hot spot followed to the last shard):")
    for line in render_placements(router.placements):
        print(f"  {line}")

    # --- 4. updates invalidate the cache --------------------------------------------
    hot_index = stream[-1]
    assert hot_index in plane.cache, "the drifted hot spot should be resident"
    fresh = bytes(database.record_size)
    router.apply_updates([(hot_index, fresh)])
    assert hot_index not in plane.cache, "dirty index must leave the cache"
    assert router.retrieve_batch([hot_index, hot_index]) == [fresh, fresh]
    print(
        f"\nbulk update of record {hot_index}: cache invalidated, re-scan "
        f"returned the fresh bytes and re-admitted them "
        f"({plane.cache.stats.invalidations} invalidation(s) total)"
    )
    print("\ncontrol plane verified: telemetry, live rebalancing, hot-record cache")


if __name__ == "__main__":
    main()
