#!/usr/bin/env python3
"""Operating IM-PIR beyond the comfortable cases: oversized databases and updates.

Two operational concerns the paper discusses in §3.3 but does not evaluate:

* **Databases larger than MRAM.**  When the database no longer fits in the
  DPU population's MRAM, IM-PIR falls back to streaming it through the DPUs
  segment by segment for every query.  The example quantifies how much that
  costs relative to the preloaded fast path (the reason the paper sizes the
  platform to hold the database resident).
* **Database updates.**  DPUs keep serving queries on a stable snapshot while
  the host applies bulk updates during idle windows, re-copying only the
  affected MRAM blocks.

Run:  python examples/oversized_database_and_updates.py
"""

from __future__ import annotations

from repro import Database, IMPIRConfig
from repro.common.units import format_seconds
from repro.core.impir import IMPIRServer
from repro.core.streaming import StreamedIMPIRServer, streaming_overhead_factor
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient


def main() -> None:
    database = Database.random(num_records=16384, record_size=32, seed=3)
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=4))
    client = PIRClient(
        num_records=database.num_records,
        record_size=database.record_size,
        prg=make_prg("numpy"),
        seed=11,
    )
    index = 9000
    query = client.query(index)[0]

    # --- preloaded vs streamed -----------------------------------------------------
    preloaded = IMPIRServer(database, config=config, server_id=0)
    preloaded_result = preloaded.answer(query)

    streamed = StreamedIMPIRServer(database, config=config, server_id=0, segment_records=4096)
    streamed_result = streamed.answer(query)

    assert preloaded_result.answer.payload == streamed_result.answer.payload
    print("preloaded vs streamed execution of the same query (simulated):")
    print(f"  preloaded (DB resident in MRAM): {format_seconds(preloaded_result.latency_seconds)}")
    print(f"  streamed  ({streamed.num_segments} segments per query): "
          f"{format_seconds(streamed_result.latency_seconds)}")
    print(f"  penalty: {streamed_result.latency_seconds / preloaded_result.latency_seconds:.1f}x, "
          f"{streaming_overhead_factor(streamed_result) * 100:.0f}% of the streamed query "
          f"is database re-copying")

    # --- bulk updates ----------------------------------------------------------------
    print("\napplying a bulk update batch while the DPUs are idle:")
    from repro.core.impir import IMPIRDeployment

    deployment = IMPIRDeployment(database, config=config, client_seed=21)
    updates = [(i, bytes([i % 256]) * database.record_size) for i in range(100, 110)]
    costs = [server.apply_updates(updates) for server in deployment.servers]
    print(f"  {len(updates)} records updated on both replicas, re-copy cost "
          f"{format_seconds(costs[0].get('update_copy'))} per replica (simulated)")

    retrieved = deployment.retrieve(105)
    assert retrieved == bytes([105]) * database.record_size
    print(f"  private retrieval of updated record 105 returns the new contents: "
          f"{retrieved.hex()[:16]}... (verified)")


if __name__ == "__main__":
    main()
