#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Prints the data series behind Fig. 3, Fig. 9, Fig. 10 / Table 1, Fig. 11 and
Fig. 12, produced by the calibrated cost models at the paper's database and
batch sizes, side by side with the paper's reported headline numbers.  See
EXPERIMENTS.md for the recorded paper-vs-measured comparison and the list of
known deviations.

Run:  python examples/reproduce_paper_figures.py
"""

from __future__ import annotations

from repro.bench.figures import (
    fig3_motivation,
    fig9_throughput_latency,
    fig10_breakdown,
    fig11_clustering,
    fig12_gpu_comparison,
)
from repro.bench.reporting import (
    render_fig3,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
)


def main() -> None:
    separator = "\n" + "=" * 100 + "\n"

    print(separator + "FIGURE 3 — motivation: DPF-PIR phase costs and roofline" + separator)
    print(render_fig3(fig3_motivation()))

    print(separator + "FIGURE 9 — throughput/latency vs DB size and batch size" + separator)
    print(render_fig9(fig9_throughput_latency()))

    print(separator + "FIGURE 10 + TABLE 1 — per-phase latency breakdown" + separator)
    fig10 = fig10_breakdown()
    print(render_fig10(fig10))
    print()
    print(render_table1(fig10))

    print(separator + "FIGURE 11 — DPU clustering" + separator)
    print(render_fig11(fig11_clustering()))

    print(separator + "FIGURE 12 — comparison with GPU-PIR" + separator)
    print(render_fig12(fig12_gpu_comparison()))


if __name__ == "__main__":
    main()
